//! Wide-lane kick/drift kernel with a deterministic polynomial sine.
//!
//! The tracker's hot loop is one `sin` per macro particle per turn. libm's
//! `sin` is scalar and opaque, so the compiler cannot vectorise across
//! particles and the result bits are at the mercy of the host libm. This
//! module replaces it with a branch-free fdlibm-style polynomial —
//! Cody–Waite range reduction to `[-π/4, π/4]` followed by the fdlibm
//! `__sin`/`__cos` minimax kernels — written so the *same arithmetic, in the
//! same order* runs scalar, autovectorised over explicit 8-wide chunks, and
//! (behind the `simd` feature) through `std::simd::f64x8`.
//!
//! # Determinism contract
//!
//! * Every operation is a plain IEEE-754 `+`, `-`, `*`, or compare — no
//!   `mul_add`, no float→int conversion, no table lookup. Elementwise IEEE
//!   ops produce identical bits at any vector width, so the Portable, Avx2,
//!   Avx512 and Simd backends are bit-identical by construction; only the
//!   `Libm` reference backend (host `sin`) may differ in the last ulp.
//! * Centroid moments are accumulated in a fixed tree: per-lane partial sums
//!   over [`REDUCE_QUANTUM`]-particle sub-chunks, each folded by the fixed
//!   lane tree `((a0+a1)+(a2+a3)) + ((a4+a5)+(a6+a7))`, then a balanced
//!   pairwise fold over the sub-chunk partials ([`fold_moments`]). The tree
//!   shape depends only on the particle count, so the reduced bits are
//!   invariant under thread count, chunk size, block size and backend lane
//!   width.
//!
//! # Accuracy budget
//!
//! The reduction keeps one 33-bit-high + 53-bit-low π/2 split (fdlibm's
//! `pio2_1`/`pio2_1t`), exact while the quadrant index fits ~20 bits:
//! |x| ≲ 2^20 rad, far beyond the tracker's |ω_rf·Δt + φ| ≲ 10³ rad. Within
//! that domain the kernel is within 2 ulp of the host libm **or** within
//! 1e-24 absolute (measured ≤ 1 ulp over a ±2000 rad grid on x86-64; the
//! absolute escape hatch covers the ~1e-26 reduction residue that dominates
//! only where sin(x) itself is ≲ 1e-10, i.e. within a hair of a zero) — the
//! differential harness in `tests/reftrack_kernel.rs` pins this bound.

// The reduction/minimax constants below are quoted digit-for-digit from
// fdlibm so they can be audited against the published values; each rounds
// to exactly the intended f64, and 2/π must stay a literal (not
// `FRAC_2_PI`) to make that provenance checkable in place.
#![allow(clippy::excessive_precision, clippy::approx_constant)]

/// 2/π, rounded to nearest f64.
const INV_PIO2: f64 = 6.366_197_723_675_813_824_33e-1;
/// 1.5 × 2^52 — adding then subtracting rounds to the nearest integer.
const TOINT: f64 = 6.755_399_441_055_744e15;
/// π/2 high part, 33 significant bits (fdlibm `pio2_1`).
const PIO2_HI: f64 = 1.570_796_326_734_125_614_17;
/// π/2 − `PIO2_HI`, full precision (fdlibm `pio2_1t`).
const PIO2_LO: f64 = 6.077_100_506_506_192_249_32e-11;

// fdlibm __sin minimax coefficients on [-π/4, π/4].
const S1: f64 = -1.666_666_666_666_663_243_48e-1;
const S2: f64 = 8.333_333_333_322_489_461_24e-3;
const S3: f64 = -1.984_126_982_985_794_931_34e-4;
const S4: f64 = 2.755_731_370_707_006_767_89e-6;
const S5: f64 = -2.505_076_025_340_686_341_95e-8;
const S6: f64 = 1.589_690_995_211_550_102_21e-10;

// fdlibm __cos minimax coefficients on [-π/4, π/4].
const C1: f64 = 4.166_666_666_666_660_190_37e-2;
const C2: f64 = -1.388_888_888_887_410_957_49e-3;
const C3: f64 = 2.480_158_728_947_672_941_78e-5;
const C4: f64 = -2.755_731_435_139_066_330_35e-7;
const C5: f64 = 2.087_572_321_298_174_827_9e-9;
const C6: f64 = -1.135_964_755_778_819_482_65e-11;

/// Lane width of the explicit-chunk kernels. All backends share it so the
/// per-lane accumulator layout (and therefore the reduced bits) agree.
pub const LANES: usize = 8;

/// Particles per reduction sub-chunk. Chunk boundaries handed to threads are
/// aligned to this quantum, so every sub-chunk's partial sum is produced by
/// exactly one thread and lands in a slot indexed by particle position —
/// independent of how many threads raced over the bunch.
pub const REDUCE_QUANTUM: usize = 256;

/// Branch-free polynomial sine, valid for |x| ≲ 2^20 rad.
///
/// Uses only `+`, `-`, `*` and `==` on f64 so every backend — scalar,
/// autovectorised, `std::simd` — performs the identical IEEE operation
/// sequence and returns identical bits.
#[inline(always)]
pub fn poly_sin(x: f64) -> f64 {
    // k = round(x · 2/π) via the TOINT trick (round-to-nearest-even).
    let big = x * INV_PIO2 + TOINT;
    let fn_ = big - TOINT;
    // Quadrant k mod 4 in {-2,-1,0,1,2}, computed in float arithmetic so
    // the loop stays vectorisable (an integer extraction here defeats LLVM's
    // AVX-512 codegen).
    let k4 = fn_ - 4.0 * ((fn_ * 0.25 + TOINT) - TOINT);
    // Cody–Waite: r = x − k·π/2 with a 33-bit head so k·PIO2_HI is exact.
    let r = x - fn_ * PIO2_HI - fn_ * PIO2_LO;
    let z = r * r;
    // fdlibm __sin kernel.
    let sr = S2 + z * (S3 + z * (S4 + z * (S5 + z * S6)));
    let s = r + (z * r) * (S1 + z * sr);
    // fdlibm __cos kernel.
    let cr = z * (C1 + z * (C2 + z * (C3 + z * (C4 + z * (C5 + z * C6)))));
    let hz = 0.5 * z;
    let w = 1.0 - hz;
    let c = w + (((1.0 - w) - hz) + z * cr);
    // Odd quadrants take the cosine branch; quadrants 2,3 negate. Ties in
    // the rounding put k4 at either ±2, so both must negate.
    let odd = k4 == -1.0 || k4 == 1.0;
    let neg = k4 == -2.0 || k4 == 2.0 || k4 == -1.0;
    let v = if odd { c } else { s };
    if neg {
        -v
    } else {
        v
    }
}

/// Distance in units in the last place between two finite f64.
pub fn ulp_distance(a: f64, b: f64) -> u64 {
    let order = |x: f64| {
        let u = x.to_bits() as i64;
        if u < 0 {
            i64::MIN - u
        } else {
            u
        }
    };
    order(a).abs_diff(order(b))
}

/// Kernel backend selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelBackend {
    /// Pick the widest polynomial backend the CPU supports at runtime.
    Auto,
    /// Host libm `f64::sin`, scalar — the accuracy reference. Matches
    /// `cil_physics::tracking::TwoParticleMap` bit-for-bit.
    Libm,
    /// Polynomial sine over explicit 8-wide chunks; autovectorises on the
    /// baseline target features.
    Portable,
    /// Polynomial sine compiled with AVX2 enabled (runtime-detected).
    #[cfg(target_arch = "x86_64")]
    Avx2,
    /// Polynomial sine compiled with AVX-512F enabled (runtime-detected).
    #[cfg(target_arch = "x86_64")]
    Avx512,
    /// Polynomial sine through `std::simd::f64x8` (requires the `simd`
    /// feature).
    #[cfg(feature = "simd")]
    Simd,
}

impl KernelBackend {
    /// Resolve `Auto` to the widest backend this CPU supports. Non-`Auto`
    /// values pass through unchanged.
    pub fn resolve(self) -> Self {
        match self {
            Self::Auto => {
                #[cfg(target_arch = "x86_64")]
                {
                    if std::arch::is_x86_feature_detected!("avx512f") {
                        return Self::Avx512;
                    }
                    if std::arch::is_x86_feature_detected!("avx2") {
                        return Self::Avx2;
                    }
                }
                Self::Portable
            }
            other => other,
        }
    }

    /// Every backend that can run on this host, `Libm` and `Auto` included.
    pub fn available() -> Vec<Self> {
        let mut v = vec![Self::Auto, Self::Libm, Self::Portable];
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                v.push(Self::Avx2);
            }
            if std::arch::is_x86_feature_detected!("avx512f") {
                v.push(Self::Avx512);
            }
        }
        #[cfg(feature = "simd")]
        v.push(Self::Simd);
        v
    }

    /// The polynomial backends runnable on this host — the set the
    /// bit-identity tests quantify over (excludes `Libm`, which is allowed
    /// to differ in the last ulp, and `Auto`, which resolves to one of
    /// these).
    pub fn poly_available() -> Vec<Self> {
        Self::available()
            .into_iter()
            .filter(|b| !matches!(b, Self::Auto | Self::Libm))
            .collect()
    }

    /// Stable lowercase label for telemetry and bench output.
    pub fn label(self) -> &'static str {
        match self {
            Self::Auto => "auto",
            Self::Libm => "libm",
            Self::Portable => "portable",
            #[cfg(target_arch = "x86_64")]
            Self::Avx2 => "avx2",
            #[cfg(target_arch = "x86_64")]
            Self::Avx512 => "avx512",
            #[cfg(feature = "simd")]
            Self::Simd => "simd",
        }
    }
}

/// Per-turn scalar parameters of the kick/drift map.
#[derive(Debug, Clone, Copy)]
pub struct KickParams {
    /// RF angular frequency ω_rf (rad/s).
    pub omega_rf: f64,
    /// Gap phase offset (rad): programmed jumps plus control action.
    pub phase_rad: f64,
    /// Peak gap voltage V̂ (V).
    pub v_hat: f64,
    /// Δγ per volt for the tracked species.
    pub q_over_mc2: f64,
    /// Phase-slip drift coefficient (s per unit Δγ per turn).
    pub drift: f64,
}

/// Partial centroid moment of one [`REDUCE_QUANTUM`] sub-chunk.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChunkMoment {
    /// Σ Δt over the sub-chunk after the update.
    pub sum_dt: f64,
    /// Σ Δγ over the sub-chunk after the update.
    pub sum_dgamma: f64,
}

/// Fixed lane-fold tree shared by every backend.
#[inline(always)]
fn lane_fold(a: &[f64; LANES]) -> f64 {
    ((a[0] + a[1]) + (a[2] + a[3])) + ((a[4] + a[5]) + (a[6] + a[7]))
}

/// The kick/drift update over one sub-chunk, generic in the sine so the
/// libm reference and the polynomial kernels share one loop body (and one
/// accumulator layout). `#[inline(always)]` so each `#[target_feature]`
/// wrapper gets its own copy to vectorise with its wider ISA.
#[inline(always)]
fn rows_with<S: Fn(f64) -> f64 + Copy>(
    dt: &mut [f64],
    dg: &mut [f64],
    p: &KickParams,
    sine: S,
) -> ChunkMoment {
    let mut acc_t = [0.0f64; LANES];
    let mut acc_g = [0.0f64; LANES];
    let full = dt.len() / LANES * LANES;
    let (dt_head, dt_rem) = dt.split_at_mut(full);
    let (dg_head, dg_rem) = dg.split_at_mut(full);
    for (tc, gc) in dt_head
        .chunks_exact_mut(LANES)
        .zip(dg_head.chunks_exact_mut(LANES))
    {
        let t: &mut [f64; LANES] = tc.try_into().unwrap();
        let g: &mut [f64; LANES] = gc.try_into().unwrap();
        for j in 0..LANES {
            let s = sine(p.omega_rf * t[j] + p.phase_rad);
            let v = p.v_hat * s;
            g[j] += p.q_over_mc2 * v;
            t[j] += p.drift * g[j];
            acc_t[j] += t[j];
            acc_g[j] += g[j];
        }
    }
    for j in 0..dt_rem.len() {
        let s = sine(p.omega_rf * dt_rem[j] + p.phase_rad);
        let v = p.v_hat * s;
        dg_rem[j] += p.q_over_mc2 * v;
        dt_rem[j] += p.drift * dg_rem[j];
        acc_t[j] += dt_rem[j];
        acc_g[j] += dg_rem[j];
    }
    ChunkMoment {
        sum_dt: lane_fold(&acc_t),
        sum_dgamma: lane_fold(&acc_g),
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn rows_avx2(dt: &mut [f64], dg: &mut [f64], p: &KickParams) -> ChunkMoment {
    rows_with(dt, dg, p, poly_sin)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn rows_avx512(dt: &mut [f64], dg: &mut [f64], p: &KickParams) -> ChunkMoment {
    rows_with(dt, dg, p, poly_sin)
}

#[cfg(feature = "simd")]
mod simd8 {
    use super::*;
    use std::simd::cmp::SimdPartialEq;
    use std::simd::{f64x8, Select};

    /// `poly_sin` on eight lanes — the same operations in the same order,
    /// expressed through `std::simd` instead of relying on autovectorisation.
    #[inline(always)]
    fn poly_sin8(x: f64x8) -> f64x8 {
        let sp = f64x8::splat;
        let big = x * sp(INV_PIO2) + sp(TOINT);
        let fn_ = big - sp(TOINT);
        let k4 = fn_ - sp(4.0) * ((fn_ * sp(0.25) + sp(TOINT)) - sp(TOINT));
        let r = x - fn_ * sp(PIO2_HI) - fn_ * sp(PIO2_LO);
        let z = r * r;
        let sr = sp(S2) + z * (sp(S3) + z * (sp(S4) + z * (sp(S5) + z * sp(S6))));
        let s = r + (z * r) * (sp(S1) + z * sr);
        let cr =
            z * (sp(C1) + z * (sp(C2) + z * (sp(C3) + z * (sp(C4) + z * (sp(C5) + z * sp(C6))))));
        let hz = sp(0.5) * z;
        let w = sp(1.0) - hz;
        let c = w + (((sp(1.0) - w) - hz) + z * cr);
        let odd = k4.simd_eq(sp(-1.0)) | k4.simd_eq(sp(1.0));
        let neg = k4.simd_eq(sp(-2.0)) | k4.simd_eq(sp(2.0)) | k4.simd_eq(sp(-1.0));
        let v = odd.select(c, s);
        neg.select(-v, v)
    }

    pub(super) fn rows(dt: &mut [f64], dg: &mut [f64], p: &KickParams) -> ChunkMoment {
        let om = f64x8::splat(p.omega_rf);
        let ph = f64x8::splat(p.phase_rad);
        let vh = f64x8::splat(p.v_hat);
        let qv = f64x8::splat(p.q_over_mc2);
        let dr = f64x8::splat(p.drift);
        let mut acc_t = f64x8::splat(0.0);
        let mut acc_g = f64x8::splat(0.0);
        let full = dt.len() / LANES * LANES;
        let (dt_head, dt_rem) = dt.split_at_mut(full);
        let (dg_head, dg_rem) = dg.split_at_mut(full);
        for (tc, gc) in dt_head
            .chunks_exact_mut(LANES)
            .zip(dg_head.chunks_exact_mut(LANES))
        {
            let mut t = f64x8::from_slice(tc);
            let mut g = f64x8::from_slice(gc);
            let s = poly_sin8(om * t + ph);
            let v = vh * s;
            g += qv * v;
            t += dr * g;
            acc_t += t;
            acc_g += g;
            tc.copy_from_slice(t.as_array());
            gc.copy_from_slice(g.as_array());
        }
        let mut arr_t = acc_t.to_array();
        let mut arr_g = acc_g.to_array();
        for j in 0..dt_rem.len() {
            let s = poly_sin(p.omega_rf * dt_rem[j] + p.phase_rad);
            let v = p.v_hat * s;
            dg_rem[j] += p.q_over_mc2 * v;
            dt_rem[j] += p.drift * dg_rem[j];
            arr_t[j] += dt_rem[j];
            arr_g[j] += dg_rem[j];
        }
        ChunkMoment {
            sum_dt: lane_fold(&arr_t),
            sum_dgamma: lane_fold(&arr_g),
        }
    }
}

/// Apply the kick/drift update to one thread's chunk, writing one
/// [`ChunkMoment`] per [`REDUCE_QUANTUM`] sub-chunk into `partials`
/// (`partials.len() == dt.len().div_ceil(REDUCE_QUANTUM)`).
///
/// `backend` must already be resolved (not `Auto`).
pub fn kick_drift_chunk(
    backend: KernelBackend,
    dt: &mut [f64],
    dg: &mut [f64],
    p: &KickParams,
    partials: &mut [ChunkMoment],
) {
    debug_assert!(!matches!(backend, KernelBackend::Auto), "resolve() first");
    debug_assert_eq!(partials.len(), dt.len().div_ceil(REDUCE_QUANTUM));
    for ((ts, gs), slot) in dt
        .chunks_mut(REDUCE_QUANTUM)
        .zip(dg.chunks_mut(REDUCE_QUANTUM))
        .zip(partials.iter_mut())
    {
        *slot = match backend {
            KernelBackend::Auto | KernelBackend::Portable => rows_with(ts, gs, p, poly_sin),
            KernelBackend::Libm => rows_with(ts, gs, p, f64::sin),
            // Safety: `resolve()`/`available()` only yield these variants
            // when the CPU reports the feature.
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Avx2 => unsafe { rows_avx2(ts, gs, p) },
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Avx512 => unsafe { rows_avx512(ts, gs, p) },
            #[cfg(feature = "simd")]
            KernelBackend::Simd => simd8::rows(ts, gs, p),
        };
    }
}

/// Balanced pairwise fold of the sub-chunk partials. The split depends only
/// on the slot count (hence only on the particle count), so the reduction
/// tree — and the reduced bits — are invariant under threading and backend.
pub fn fold_moments(partials: &[ChunkMoment]) -> ChunkMoment {
    match partials {
        [] => ChunkMoment::default(),
        [one] => *one,
        many => {
            let (lo, hi) = many.split_at(many.len().div_ceil(2));
            let a = fold_moments(lo);
            let b = fold_moments(hi);
            ChunkMoment {
                sum_dt: a.sum_dt + b.sum_dt,
                sum_dgamma: a.sum_dgamma + b.sum_dgamma,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poly_sin_matches_libm_to_two_ulp() {
        let mut worst = 0u64;
        let mut x = -2000.0;
        while x < 2000.0 {
            worst = worst.max(ulp_distance(poly_sin(x), x.sin()));
            x += 1.234_567e-3;
        }
        assert!(worst <= 2, "max ulp distance {worst}");
    }

    #[test]
    fn poly_sin_special_values() {
        assert_eq!(poly_sin(0.0).to_bits(), 0.0f64.to_bits());
        // The polynomial sum rounds −0 + 0 to +0, so the sign of zero is
        // not preserved (unlike libm); the value is still exact.
        assert_eq!(poly_sin(-0.0), 0.0);
        assert!(poly_sin(f64::NAN).is_nan());
        // Quadrant boundaries (k·π/2 neighbourhood) through both branches.
        // At even k the true sine is ~5e-16·k, smaller than the ~1e-26
        // absolute residue of the two-term reduction, so the relative-ulp
        // bound gives way to the absolute bound there.
        for k in -8i32..=8 {
            let x = f64::from(k) * std::f64::consts::FRAC_PI_2;
            let (a, b) = (poly_sin(x), x.sin());
            assert!(
                ulp_distance(a, b) <= 2 || (a - b).abs() < 1e-24,
                "x = {k}·π/2: {a} vs {b}"
            );
        }
    }

    #[test]
    fn backends_bit_identical_on_one_chunk() {
        let p = KickParams {
            omega_rf: std::f64::consts::TAU * 3.2e6,
            phase_rad: 0.137,
            v_hat: 4.2e3,
            q_over_mc2: 5.3e-10,
            drift: 1.7e-5,
        };
        let n = 777usize; // exercises the lane remainder and a ragged sub-chunk
        let dt0: Vec<f64> = (0..n).map(|i| (i as f64 - 388.0) * 3.1e-10).collect();
        let dg0: Vec<f64> = (0..n).map(|i| (i as f64).sin() * 1e-4).collect();
        let reference: Option<(Vec<f64>, Vec<f64>, Vec<ChunkMoment>)> = None;
        let mut reference = reference;
        for backend in KernelBackend::poly_available() {
            let mut dt = dt0.clone();
            let mut dg = dg0.clone();
            let mut parts = vec![ChunkMoment::default(); n.div_ceil(REDUCE_QUANTUM)];
            for _ in 0..200 {
                kick_drift_chunk(backend, &mut dt, &mut dg, &p, &mut parts);
            }
            match &reference {
                None => reference = Some((dt, dg, parts)),
                Some((rt, rg, rp)) => {
                    assert!(
                        rt.iter().zip(&dt).all(|(a, b)| a.to_bits() == b.to_bits()),
                        "dt bits differ on {}",
                        backend.label()
                    );
                    assert!(
                        rg.iter().zip(&dg).all(|(a, b)| a.to_bits() == b.to_bits()),
                        "dgamma bits differ on {}",
                        backend.label()
                    );
                    assert_eq!(rp, &parts, "partials differ on {}", backend.label());
                }
            }
        }
    }

    #[test]
    fn fold_moments_is_independent_of_partition() {
        // Folding the same slots is one call — partition independence is
        // about the *producer* side: slots filled by different chunkings of
        // the same particles must agree. kick_drift_chunk writes each slot
        // from exactly the particles of one sub-chunk, so filling the slots
        // through two chunk sizes must give identical slot values.
        let p = KickParams {
            omega_rf: 2.1e7,
            phase_rad: -0.4,
            v_hat: 1.1e3,
            q_over_mc2: 4.4e-10,
            drift: 3.3e-6,
        };
        let n = 4 * REDUCE_QUANTUM + 19;
        let dt0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.618).cos() * 2e-9).collect();
        let dg0 = vec![0.0f64; n];
        let slots = n.div_ceil(REDUCE_QUANTUM);
        let run = |split: usize| {
            let mut dt = dt0.clone();
            let mut dg = dg0.clone();
            let mut parts = vec![ChunkMoment::default(); slots];
            let cut = split * REDUCE_QUANTUM;
            let (t_lo, t_hi) = dt.split_at_mut(cut);
            let (g_lo, g_hi) = dg.split_at_mut(cut);
            let (p_lo, p_hi) = parts.split_at_mut(split);
            kick_drift_chunk(KernelBackend::Portable, t_lo, g_lo, &p, p_lo);
            kick_drift_chunk(KernelBackend::Portable, t_hi, g_hi, &p, p_hi);
            let m = fold_moments(&parts);
            (dt, dg, m)
        };
        let whole = run(0);
        for split in 1..=4 {
            let cut = run(split);
            assert_eq!(whole.0, cut.0, "dt differs at split {split}");
            assert_eq!(whole.1, cut.1, "dgamma differs at split {split}");
            assert_eq!(whole.2, cut.2, "folded moment differs at split {split}");
        }
    }

    #[test]
    fn auto_resolves_to_available_poly_backend() {
        let r = KernelBackend::Auto.resolve();
        assert!(KernelBackend::poly_available().contains(&r), "{r:?}");
        assert_eq!(r.resolve(), r);
    }
}
