//! Beam observables: what the instrumentation "sees".
//!
//! Converts ensemble state into the signals the paper's setup measures — a
//! pickup-style beam profile signal and per-turn moment histories — plus a
//! synthetic beam-signal generator that adapts to the actual bunch shape
//! (the parametric-pulse extension of Section VI).

use crate::ensemble::Ensemble;
use cil_physics::modes::MomentHistory;

/// Per-turn observable recorder.
#[derive(Debug, Clone, Default)]
pub struct BeamMonitor {
    /// Centroid / RMS history (dipole & quadrupole coordinates).
    pub moments: MomentHistory,
}

impl BeamMonitor {
    /// New empty monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one turn.
    pub fn record(&mut self, ensemble: &Ensemble) {
        self.moments.push_from_particles(&ensemble.dt);
    }

    /// Centroid trace, seconds per turn.
    pub fn centroid(&self) -> &[f64] {
        &self.moments.centroid
    }

    /// RMS bunch-length trace, seconds per turn.
    pub fn rms(&self) -> &[f64] {
        &self.moments.rms
    }
}

/// Build a parametric beam pulse from the *measured* ensemble profile
/// (normalised to peak 1), the Section VI replacement for the fixed
/// synthetic Gauss pulse. `span` is the half-width of the sampling window
/// in seconds around the centroid; `points` the table resolution.
pub fn parametric_pulse(ensemble: &Ensemble, span: f64, points: usize) -> Vec<f64> {
    assert!(points >= 8);
    let c = ensemble.centroid_dt();
    let hist = ensemble.profile(c - span, c + span, points);
    let max = hist.iter().copied().max().unwrap_or(1).max(1);
    // Light 3-bin smoothing to stand in for pickup bandwidth.
    let raw: Vec<f64> = hist
        .iter()
        .map(|&h| f64::from(h) / f64::from(max))
        .collect();
    let mut out = vec![0.0; points];
    for i in 0..points {
        let a = raw[i.saturating_sub(1)];
        let b = raw[i];
        let d = raw[(i + 1).min(points - 1)];
        out[i] = (a + 2.0 * b + d) / 4.0;
    }
    // Renormalise after smoothing.
    let m = out.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
    for v in &mut out {
        *v /= m;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cil_physics::distribution::BunchSpec;
    use cil_physics::machine::{MachineParams, OperatingPoint};
    use cil_physics::synchrotron::SynchrotronCalc;
    use cil_physics::IonSpecies;

    fn op() -> OperatingPoint {
        let m = MachineParams::sis18();
        let ion = IonSpecies::n14_7plus();
        let v = SynchrotronCalc::new(m, ion)
            .voltage_for_fs(800e3, 1.28e3)
            .unwrap();
        OperatingPoint::from_revolution_frequency(m, ion, 800e3, v)
    }

    #[test]
    fn monitor_records_turn_by_turn() {
        let mut mon = BeamMonitor::new();
        let e = Ensemble::monoparticle(10, 1e-9, 0.0);
        mon.record(&e);
        mon.record(&e);
        assert_eq!(mon.centroid().len(), 2);
        assert!((mon.centroid()[0] - 1e-9).abs() < 1e-18);
        // All particles identical: RMS is zero up to the rounding of the
        // mean (1e-9 is not exactly representable).
        assert!(mon.rms()[0] < 1e-20);
    }

    #[test]
    fn parametric_pulse_peaks_at_one() {
        let e = Ensemble::matched(&BunchSpec::gaussian(10e-9), 50_000, &op(), 4).unwrap();
        let pulse = parametric_pulse(&e, 40e-9, 64);
        let max = pulse.iter().cloned().fold(0.0f64, f64::max);
        assert!((max - 1.0).abs() < 1e-9);
        // Peak near the middle of the window.
        let imax = pulse
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!((24..=40).contains(&imax), "peak at {imax}");
    }

    #[test]
    fn parametric_pulse_tracks_bunch_width() {
        let narrow = Ensemble::matched(&BunchSpec::gaussian(5e-9), 50_000, &op(), 4).unwrap();
        let wide = Ensemble::matched(&BunchSpec::gaussian(20e-9), 50_000, &op(), 4).unwrap();
        let count_above_half = |e: &Ensemble| {
            parametric_pulse(e, 60e-9, 128)
                .iter()
                .filter(|&&v| v > 0.5)
                .count()
        };
        assert!(
            count_above_half(&wide) > 2 * count_above_half(&narrow),
            "FWHM scales with bunch length"
        );
    }
}
