#![cfg_attr(feature = "simd", feature(portable_simd))]
//! # cil-reftrack — multi-macro-particle reference tracker
//!
//! The ESME / LONG1D / BLonD-class offline simulator the paper cites as
//! related work (Section II), built here for two jobs:
//!
//! 1. **The "real beam" stand-in for Fig. 5b.** The paper validates its
//!    single-macro-particle HIL against the actual SIS18 beam; without an
//!    accelerator, the accepted ground truth is a many-particle nonlinear
//!    tracker, which exhibits the collective effects the paper discusses
//!    (Landau damping, filamentation) that one macro particle cannot show.
//! 2. **The future-work features of Section VI**: multi-macro-particle
//!    simulation enabling quadrupole modes and parametric bunch profiles.
//!
//! The tracker is deliberately *not* real-time — that is the paper's point —
//! and instead optimises for throughput: structure-of-arrays storage and
//! scoped-thread parallelism over fixed particle chunks, with a
//! deterministic merge so a given seed always produces the same trajectory
//! regardless of thread count.

pub mod ensemble;
pub mod kernel;
pub mod landau;
pub mod observables;
pub mod tracker;
pub mod wake;

pub use ensemble::Ensemble;
pub use kernel::KernelBackend;
pub use tracker::{MultiParticleTracker, StepMoments, TrackerConfig};
