//! Beam loading: the bunch's own induced voltage in the cavity.
//!
//! The paper positions offline codes (ESME, LONG1D, BLonD) as including
//! "many important beam dynamics effects … such as beam loading or
//! space-charge effects" (Section II) that its real-time two-particle model
//! omits. This module adds the dominant one to the multi-particle tracker:
//! the gap behaves as a parallel RLC resonator, each passing charge rings
//! it, and later particles see the accumulated induced voltage.
//!
//! Model: the standard resonator wake. For shunt impedance `R_s`, quality
//! factor `Q` and resonant angular frequency `ω_r`, a point charge `q`
//! leaves behind (for times t > 0)
//!
//! ```text
//! W(t) = (ω_r R_s / Q) · e^{−ω_r t / 2Q} · [cos(ω̄ t) − sin(ω̄ t)/(2Q̄)]
//! ```
//!
//! with `ω̄ = ω_r √(1 − 1/4Q²)`. Instead of convolving over all past
//! particles, the cavity state is carried as a complex phasor that decays
//! and rotates between kicks — O(N log N) per turn (dominated by the sort),
//! numerically exact for the resonator model.

use crate::ensemble::Ensemble;
use serde::{Deserialize, Serialize};

/// A parallel-resonator gap impedance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Resonator {
    /// Shunt impedance R_s, ohms.
    pub shunt_ohms: f64,
    /// Quality factor Q (≥ 0.5 for an oscillatory response).
    pub quality: f64,
    /// Resonant frequency, Hz.
    pub f_res: f64,
}

impl Resonator {
    /// An SIS18-like ferrite-cavity resonator tuned near the RF harmonic.
    pub fn sis18_like(f_rf: f64) -> Self {
        Self {
            shunt_ohms: 2e3,
            quality: 20.0,
            f_res: f_rf,
        }
    }

    /// Fundamental theorem of beam loading: the charge sees half its own
    /// induced voltage. Per unit charge: `k = ω_r R_s / 2Q` (the loss
    /// factor).
    pub fn loss_factor(&self) -> f64 {
        std::f64::consts::TAU * self.f_res * self.shunt_ohms / (2.0 * self.quality)
    }
}

/// Cavity beam-loading state: the ringing phasor between passages.
#[derive(Debug, Clone)]
pub struct BeamLoading {
    /// The resonator.
    pub resonator: Resonator,
    /// Charge per macro particle, coulombs (bunch charge / macro count).
    pub charge_per_macro: f64,
    /// Phasor (voltage-like) components of the ringing cavity.
    v_cos: f64,
    v_sin: f64,
    /// Absolute time of the phasor reference, seconds.
    t_ref: f64,
    /// Scratch: particle order by arrival time (reused per turn).
    order: Vec<u32>,
}

impl BeamLoading {
    /// New quiet cavity.
    pub fn new(resonator: Resonator, bunch_charge_c: f64, macros: usize) -> Self {
        assert!(macros > 0);
        assert!(
            resonator.quality >= 0.5,
            "overdamped resonators not supported"
        );
        Self {
            resonator,
            charge_per_macro: bunch_charge_c / macros as f64,
            v_cos: 0.0,
            v_sin: 0.0,
            t_ref: 0.0,
            order: Vec::new(),
        }
    }

    /// Decay + rotate the phasor from `t_ref` to `t`.
    fn evolve_to(&mut self, t: f64) {
        if self.v_cos == 0.0 && self.v_sin == 0.0 {
            // Quiet cavity: just move the reference (also covers the first
            // passage, whose earliest particle precedes the nominal t = 0).
            self.t_ref = t;
            return;
        }
        let dt = t - self.t_ref;
        debug_assert!(dt >= 0.0, "time must not run backwards");
        let w_r = std::f64::consts::TAU * self.resonator.f_res;
        let q = self.resonator.quality;
        let w_bar = w_r * (1.0 - 1.0 / (4.0 * q * q)).sqrt();
        let damp = (-w_r * dt / (2.0 * q)).exp();
        let (s, c) = (w_bar * dt).sin_cos();
        let (vc, vs) = (self.v_cos, self.v_sin);
        self.v_cos = damp * (vc * c - vs * s);
        self.v_sin = damp * (vc * s + vs * c);
        self.t_ref = t;
    }

    /// Induced voltage seen right now (phasor cosine component).
    fn voltage_now(&self) -> f64 {
        self.v_cos
    }

    /// One bunch passage at absolute turn time `t_turn`: every particle
    /// receives the voltage rung up by all *earlier* particles of this and
    /// previous turns, plus half its own contribution (fundamental theorem).
    /// Returns the per-particle induced voltages (volts), ordered like the
    /// ensemble.
    pub fn passage(&mut self, ensemble: &Ensemble, t_turn: f64) -> Vec<f64> {
        let n = ensemble.len();
        // Sort indices by arrival time.
        self.order.clear();
        self.order.extend(0..n as u32);
        let dts = &ensemble.dt;
        self.order.sort_by(|&a, &b| {
            dts[a as usize]
                .partial_cmp(&dts[b as usize])
                .expect("finite dt")
        });

        let k = self.resonator.loss_factor();
        let dv = 2.0 * k * self.charge_per_macro; // full ring-up per macro
        let mut out = vec![0.0; n];
        let order = std::mem::take(&mut self.order);
        for &i in &order {
            let t = t_turn + dts[i as usize];
            self.evolve_to(t);
            // Sees the existing field + half its own.
            out[i as usize] = self.voltage_now() - 0.5 * dv;
            // Rings the cavity down (decelerating: negative voltage behind).
            self.v_cos -= dv;
        }
        self.order = order;
        out
    }

    /// Peak induced voltage currently ringing in the cavity.
    pub fn stored_voltage(&self) -> f64 {
        (self.v_cos * self.v_cos + self.v_sin * self.v_sin).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cil_physics::distribution::BunchSpec;
    use cil_physics::machine::{MachineParams, OperatingPoint};
    use cil_physics::synchrotron::SynchrotronCalc;
    use cil_physics::IonSpecies;

    fn op() -> OperatingPoint {
        let m = MachineParams::sis18();
        let ion = IonSpecies::n14_7plus();
        let v = SynchrotronCalc::new(m, ion)
            .voltage_for_fs(800e3, 1.28e3)
            .unwrap();
        OperatingPoint::from_revolution_frequency(m, ion, 800e3, v)
    }

    #[test]
    fn loss_factor_formula() {
        let r = Resonator {
            shunt_ohms: 1e3,
            quality: 10.0,
            f_res: 3.2e6,
        };
        let expect = std::f64::consts::TAU * 3.2e6 * 1e3 / 20.0;
        assert!((r.loss_factor() - expect).abs() < 1.0);
    }

    #[test]
    fn single_particle_sees_half_its_own_wake() {
        let r = Resonator::sis18_like(3.2e6);
        let mut bl = BeamLoading::new(r, 1e-9, 1);
        let e = Ensemble::monoparticle(1, 0.0, 0.0);
        let v = bl.passage(&e, 0.0);
        let dv = 2.0 * r.loss_factor() * 1e-9;
        assert!(
            (v[0] + 0.5 * dv).abs() < 1e-12,
            "fundamental theorem: {}",
            v[0]
        );
        assert!((bl.stored_voltage() - dv).abs() < 1e-12);
    }

    #[test]
    fn trailing_particle_sees_the_leaders_wake() {
        let r = Resonator {
            shunt_ohms: 1e3,
            quality: 1e6,
            f_res: 3.2e6,
        };
        let mut bl = BeamLoading::new(r, 2e-9, 2);
        // Two particles, the second exactly one resonator period behind:
        // it sees the leader's full (decelerating) wake in phase.
        let period = 1.0 / 3.2e6;
        let e = Ensemble {
            dt: vec![0.0, period],
            dgamma: vec![0.0; 2],
        };
        let v = bl.passage(&e, 0.0);
        let dv = 2.0 * r.loss_factor() * 1e-9;
        assert!(v[1] < v[0], "trailing particle decelerated more");
        assert!(
            (v[1] - (v[0] - dv)).abs() < dv * 1e-3,
            "full wake at one period"
        );
    }

    #[test]
    fn wake_decays_between_turns() {
        let r = Resonator {
            shunt_ohms: 2e3,
            quality: 5.0,
            f_res: 3.2e6,
        };
        let mut bl = BeamLoading::new(r, 1e-9, 1);
        let e = Ensemble::monoparticle(1, 0.0, 0.0);
        bl.passage(&e, 0.0);
        let v0 = bl.stored_voltage();
        // Evolve one revolution (1.25 µs): Q=5 at 3.2 MHz decays fast.
        bl.evolve_to(1.25e-6);
        assert!(bl.stored_voltage() < v0 * 0.1, "ringing decayed");
    }

    #[test]
    fn induced_voltage_scales_with_intensity() {
        let r = Resonator::sis18_like(3.2e6);
        let e = Ensemble::matched(&BunchSpec::gaussian(15e-9), 1000, &op(), 3).unwrap();
        let mut low = BeamLoading::new(r, 1e-9, 1000);
        let mut high = BeamLoading::new(r, 1e-8, 1000);
        let v_low = low.passage(&e, 0.0);
        let v_high = high.passage(&e, 0.0);
        let sum = |v: &[f64]| v.iter().map(|x| x.abs()).sum::<f64>();
        let ratio = sum(&v_high) / sum(&v_low);
        assert!((ratio - 10.0).abs() < 0.5, "linear in charge: {ratio}");
    }

    #[test]
    fn wake_kick_loop_is_thread_count_invariant() {
        // `passage` is a sequential phasor sweep in arrival order and the
        // tracker kick is elementwise, so the combined wake + RF loop must
        // be bit-identical for every worker configuration — the same
        // determinism contract the bare tracker gives.
        use crate::kernel::KernelBackend;
        use crate::tracker::{MultiParticleTracker, TrackerConfig};
        let op = op();
        let f_rf = op.f_rf();
        let run = |threads: usize, min_chunk: usize| {
            let e = Ensemble::matched(&BunchSpec::gaussian(14e-9), 4096, &op, 23).unwrap();
            let mut tracker = MultiParticleTracker::new(
                op,
                e,
                TrackerConfig {
                    threads,
                    min_chunk,
                    backend: KernelBackend::Auto,
                },
            );
            let mut bl = BeamLoading::new(Resonator::sis18_like(f_rf), 2e-9, 4096);
            let q_over_mc2 = op.ion.gamma_per_volt();
            let mut wake_head = Vec::new();
            for turn in 0..120 {
                let t_turn = turn as f64 / op.f_rev();
                let v_ind = bl.passage(&tracker.ensemble, t_turn);
                for (g, v) in tracker.ensemble.dgamma.iter_mut().zip(&v_ind) {
                    *g += q_over_mc2 * v;
                }
                tracker.step(0.0);
                wake_head.push(v_ind[0].to_bits());
            }
            (tracker.ensemble.dt, tracker.ensemble.dgamma, wake_head)
        };
        let reference = run(1, 1);
        for (threads, min_chunk) in [(2usize, 64usize), (4, 997), (8, 1)] {
            let got = run(threads, min_chunk);
            assert_eq!(reference.0, got.0, "dt @ {threads} threads");
            assert_eq!(reference.1, got.1, "dgamma @ {threads} threads");
            assert_eq!(reference.2, got.2, "wake voltages @ {threads} threads");
        }
    }

    #[test]
    fn beam_loading_shifts_the_equilibrium_with_intensity() {
        // The first-order collective effect: the bunch decelerates itself
        // (loss factor), so the stable position moves to where the RF makes
        // up the loss — the synchronous-phase shift every high-intensity
        // ring must compensate. Track a matched bunch to equilibrium with
        // increasing charge and watch the mean position move.
        use crate::tracker::{MultiParticleTracker, TrackerConfig};
        let op = op();
        let f_rf = op.f_rf();
        let run = |bunch_charge: f64| {
            let e = Ensemble::matched(&BunchSpec::gaussian(12e-9), 2000, &op, 17).unwrap();
            let mut tracker = MultiParticleTracker::new(
                op,
                e,
                TrackerConfig {
                    threads: 1,
                    min_chunk: 1 << 30,
                    backend: crate::kernel::KernelBackend::Auto,
                },
            );
            let mut bl = BeamLoading::new(Resonator::sis18_like(f_rf), bunch_charge, 2000);
            let turns = (op.f_rev() / 1.28e3 * 8.0) as usize;
            let mut tail_mean = 0.0;
            let tail_start = turns * 3 / 4;
            for turn in 0..turns {
                // Induced-voltage kick before the RF kick.
                let t_turn = turn as f64 / op.f_rev();
                let v_ind = bl.passage(&tracker.ensemble, t_turn);
                let q_over_mc2 = op.ion.gamma_per_volt();
                for (g, v) in tracker.ensemble.dgamma.iter_mut().zip(&v_ind) {
                    *g += q_over_mc2 * v;
                }
                tracker.step(0.0);
                if turn >= tail_start {
                    tail_mean += tracker.ensemble.centroid_dt();
                }
            }
            tail_mean / (turns - tail_start) as f64
        };
        let dt_weak = run(1e-12);
        let dt_strong = run(5e-8);
        // Below transition the loss is made up by arriving late (positive
        // gap voltage), so the equilibrium moves to positive dt.
        let shift = dt_strong - dt_weak;
        assert!(
            shift > 0.2e-9,
            "intensity shifts the equilibrium: {dt_weak} -> {dt_strong}"
        );
        // Sanity: predicted shift = <V_ind>/(V_hat * w_rf) — same order.
        let v_loss = Resonator::sis18_like(f_rf).loss_factor() * 5e-8; // ~ mean self-loss
        let predicted = v_loss / (op.v_gap_volts * std::f64::consts::TAU * f_rf);
        assert!(
            shift < predicted * 10.0 && shift > predicted / 10.0,
            "shift {shift} vs predicted order {predicted}"
        );
    }
}
