//! Parallel multi-particle tracking.
//!
//! Per revolution, every macro particle gets the full *nonlinear* RF kick
//! (no small-amplitude expansion) followed by the phase-slip drift — the
//! same physics as `cil_physics::tracking` but vectorised over the bunch and
//! parallelised with scoped threads over fixed chunks.
//!
//! Determinism: the per-particle update is embarrassingly parallel and each
//! particle is written by exactly one thread, so results are bit-identical
//! for any thread count; reductions (centroid) are computed afterwards over
//! the stable particle order.

use crate::ensemble::Ensemble;
use cil_physics::constants::{C, TWO_PI};
use cil_physics::machine::OperatingPoint;

/// Tracker configuration.
#[derive(Debug, Clone, Copy)]
pub struct TrackerConfig {
    /// Worker threads (1 = sequential). Chunking is fixed at construction so
    /// the thread count never changes results.
    pub threads: usize,
    /// Minimum particles per chunk before another thread is worth waking.
    pub min_chunk: usize,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            min_chunk: 4096,
        }
    }
}

/// Multi-particle tracker bound to an operating point.
#[derive(Debug, Clone)]
pub struct MultiParticleTracker {
    /// Operating point (machine, ion, γ_R, V̂).
    pub op: OperatingPoint,
    /// Worker configuration.
    pub config: TrackerConfig,
    /// The tracked bunch.
    pub ensemble: Ensemble,
    /// Completed revolutions.
    pub turn: u64,
}

impl MultiParticleTracker {
    /// New tracker over an ensemble.
    pub fn new(op: OperatingPoint, ensemble: Ensemble, config: TrackerConfig) -> Self {
        Self {
            op,
            config,
            ensemble,
            turn: 0,
        }
    }

    /// Advance one revolution with the gap RF phase offset by
    /// `rf_phase_offset_rad` (phase jumps plus control action), stationary
    /// case (reference particle on set values, no net acceleration).
    pub fn step(&mut self, rf_phase_offset_rad: f64) {
        let f_rev = self.op.f_rev();
        let f_rf = self.op.machine.rf_frequency(f_rev);
        let omega_rf = TWO_PI * f_rf;
        let q_over_mc2 = self.op.ion.gamma_per_volt();
        let v_hat = self.op.v_gap_volts;
        let gamma_r = self.op.gamma_r;
        let eta = self.op.eta();
        let beta = self.op.beta_r();
        let drift = self.op.machine.orbit_length_m * eta / (beta * beta * beta * C) / gamma_r;

        let n = self.ensemble.len();
        let threads = self.config.threads.max(1);
        let chunk = (n / threads + 1).max(self.config.min_chunk);

        let dts = &mut self.ensemble.dt;
        let dgs = &mut self.ensemble.dgamma;

        let kick_drift = |dt_chunk: &mut [f64], dg_chunk: &mut [f64]| {
            for (t, g) in dt_chunk.iter_mut().zip(dg_chunk.iter_mut()) {
                let v = v_hat * (omega_rf * *t + rf_phase_offset_rad).sin();
                *g += q_over_mc2 * v;
                *t += drift * *g;
            }
        };

        if threads == 1 || n <= chunk {
            kick_drift(dts, dgs);
        } else {
            let kick_drift = &kick_drift;
            std::thread::scope(|s| {
                for (dt_chunk, dg_chunk) in dts.chunks_mut(chunk).zip(dgs.chunks_mut(chunk)) {
                    s.spawn(move || kick_drift(dt_chunk, dg_chunk));
                }
            });
        }
        self.turn += 1;
    }

    /// Track `turns` revolutions with a caller-supplied phase program
    /// (`phase(turn) -> offset rad`), recording the centroid each turn.
    /// Returns centroid Δt per turn.
    pub fn run<F: Fn(u64) -> f64>(&mut self, turns: usize, phase: F) -> Vec<f64> {
        let mut out = Vec::with_capacity(turns);
        for _ in 0..turns {
            self.step(phase(self.turn));
            out.push(self.ensemble.centroid_dt());
        }
        out
    }

    /// Centroid phase in degrees at the RF harmonic (the Fig. 5 y-axis).
    pub fn centroid_phase_deg(&self) -> f64 {
        self.ensemble.centroid_dt() * self.op.f_rf() * 360.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cil_physics::distribution::BunchSpec;
    use cil_physics::machine::MachineParams;
    use cil_physics::synchrotron::SynchrotronCalc;
    use cil_physics::tracking::TwoParticleMap;
    use cil_physics::IonSpecies;

    fn op() -> OperatingPoint {
        let m = MachineParams::sis18();
        let ion = IonSpecies::n14_7plus();
        let v = SynchrotronCalc::new(m, ion)
            .voltage_for_fs(800e3, 1.28e3)
            .unwrap();
        OperatingPoint::from_revolution_frequency(m, ion, 800e3, v)
    }

    #[test]
    fn single_particle_matches_two_particle_map() {
        // One macro particle in the multiparticle tracker = the paper's
        // model; must agree with TwoParticleMap to float accuracy.
        let op = op();
        let dt0 = 8.0 / 360.0 / op.f_rf();
        let mut tracker = MultiParticleTracker::new(
            op,
            Ensemble::monoparticle(1, dt0, 0.0),
            TrackerConfig {
                threads: 1,
                min_chunk: 1,
            },
        );
        let mut map = TwoParticleMap::at_operating_point(&op);
        map.particle.dt = dt0;
        for _ in 0..2000 {
            tracker.step(0.0);
            map.step_stationary(op.v_gap_volts, 0.0);
            assert!(
                (tracker.ensemble.dt[0] - map.particle.dt).abs() < 1e-18,
                "turn {}: {} vs {}",
                tracker.turn,
                tracker.ensemble.dt[0],
                map.particle.dt
            );
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let op = op();
        let e = Ensemble::matched(&BunchSpec::gaussian(15e-9), 20_000, &op, 11).unwrap();
        let mut seq = MultiParticleTracker::new(
            op,
            e.clone(),
            TrackerConfig {
                threads: 1,
                min_chunk: 1,
            },
        );
        let mut par = MultiParticleTracker::new(
            op,
            e,
            TrackerConfig {
                threads: 8,
                min_chunk: 128,
            },
        );
        for _ in 0..50 {
            seq.step(0.1);
            par.step(0.1);
        }
        assert_eq!(
            seq.ensemble.dt, par.ensemble.dt,
            "bit-identical across threads"
        );
        assert_eq!(seq.ensemble.dgamma, par.ensemble.dgamma);
    }

    #[test]
    fn coherent_oscillation_after_phase_jump() {
        // An 8° RF phase jump displaces the stable point; the centroid must
        // oscillate with first peak ≈ 2× the jump (in phase terms) around
        // the new equilibrium — the paper's key qualitative signature.
        let op = op();
        let e = Ensemble::matched(&BunchSpec::gaussian(10e-9), 5_000, &op, 5).unwrap();
        let mut tracker = MultiParticleTracker::new(
            op,
            e,
            TrackerConfig {
                threads: 4,
                min_chunk: 512,
            },
        );
        let jump = 8.0_f64.to_radians();
        let turns = (op.f_rev() / 1.28e3) as usize; // one synchrotron period
        let trace = tracker.run(turns, |_| jump);
        // Convert to degrees at the RF harmonic.
        let deg: Vec<f64> = trace.iter().map(|dt| dt * op.f_rf() * 360.0).collect();
        let min = deg.iter().cloned().fold(f64::MAX, f64::min);
        // Equilibrium moves to −8°; the centroid swings from 0 to ≈ −16°.
        assert!(min < -14.0 && min > -18.0, "first swing reaches {min} deg");
    }

    #[test]
    fn filamentation_decoheres_large_bunch() {
        // A *large* displaced bunch decoheres (Landau damping /
        // filamentation): the centroid amplitude shrinks over many periods
        // even without any control loop — the effect the paper says its
        // single-macro-particle model cannot show.
        let op = op();
        let mut e = Ensemble::matched(&BunchSpec::gaussian(40e-9), 20_000, &op, 9).unwrap();
        e.displace_dt(30e-9);
        let mut tracker = MultiParticleTracker::new(op, e, TrackerConfig::default());
        let period = (op.f_rev() / 1.28e3) as usize;
        let trace = tracker.run(period * 12, |_| 0.0);
        let early_peak = trace[..period]
            .iter()
            .cloned()
            .fold(0.0f64, |a, b| a.max(b.abs()));
        let late_peak = trace[period * 10..]
            .iter()
            .cloned()
            .fold(0.0f64, |a, b| a.max(b.abs()));
        assert!(
            late_peak < early_peak * 0.8,
            "decoherence: early {early_peak}, late {late_peak}"
        );
    }

    #[test]
    fn small_bunch_keeps_coherence_longer() {
        // The tighter the bunch, the smaller the synchrotron-frequency
        // spread, the slower the decoherence.
        let op = op();
        let run = |sigma: f64| {
            let mut e = Ensemble::matched(&BunchSpec::gaussian(sigma), 10_000, &op, 2).unwrap();
            e.displace_dt(20e-9);
            let mut tr = MultiParticleTracker::new(op, e, TrackerConfig::default());
            let period = (op.f_rev() / 1.28e3) as usize;
            let trace = tr.run(period * 8, |_| 0.0);
            trace[period * 7..]
                .iter()
                .cloned()
                .fold(0.0f64, |a, b| a.max(b.abs()))
        };
        let tight = run(5e-9);
        let wide = run(45e-9);
        assert!(
            tight > wide,
            "tight bunch stays coherent: {tight} vs {wide}"
        );
    }

    #[test]
    fn energy_conservation_in_stationary_bucket() {
        // Without acceleration the ensemble's mean Δγ stays ≈ 0 over long
        // tracking (symmetric kicks in a matched bunch).
        let op = op();
        let e = Ensemble::matched(&BunchSpec::gaussian(15e-9), 10_000, &op, 21).unwrap();
        let mut tr = MultiParticleTracker::new(op, e, TrackerConfig::default());
        for _ in 0..5_000 {
            tr.step(0.0);
        }
        let bucket = SynchrotronCalc::new(op.machine, op.ion)
            .bucket_half_height_dgamma(op.f_rev(), op.v_gap_volts)
            .unwrap();
        assert!(
            tr.ensemble.centroid_dgamma().abs() < bucket * 0.02,
            "mean dgamma = {}",
            tr.ensemble.centroid_dgamma()
        );
    }
}
