//! Parallel multi-particle tracking.
//!
//! Per revolution, every macro particle gets the full *nonlinear* RF kick
//! (no small-amplitude expansion) followed by the phase-slip drift — the
//! same physics as `cil_physics::tracking` but vectorised over the bunch by
//! the wide-lane kernel in [`crate::kernel`] and parallelised with scoped
//! threads over fixed chunks.
//!
//! Determinism: the per-particle update is embarrassingly parallel and each
//! particle is written by exactly one thread, so the phase-space arrays are
//! bit-identical for any thread count; the centroid moments returned by
//! [`MultiParticleTracker::step`] come from the kernel's fixed reduction
//! tree, so they too are invariant under thread count, chunk size and
//! backend lane width.

use crate::ensemble::Ensemble;
use crate::kernel::{self, ChunkMoment, KernelBackend, KickParams, REDUCE_QUANTUM};
use cil_physics::constants::{C, TWO_PI};
use cil_physics::machine::OperatingPoint;

/// Tracker configuration.
#[derive(Debug, Clone, Copy)]
pub struct TrackerConfig {
    /// Worker threads (1 = sequential). Chunking is fixed by the particle
    /// count alone, so the thread count never changes results.
    pub threads: usize,
    /// Minimum particles per chunk before another thread is worth waking.
    pub min_chunk: usize,
    /// Kick/drift kernel backend.
    pub backend: KernelBackend,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            min_chunk: 4096,
            backend: KernelBackend::Auto,
        }
    }
}

/// Centroid moments of one revolution, reduced inside the step by the
/// kernel's fixed tree (no second pass over the bunch).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepMoments {
    /// Macro particles in the bunch.
    pub n: usize,
    /// Σ Δt after the update (s).
    pub sum_dt: f64,
    /// Σ Δγ after the update.
    pub sum_dgamma: f64,
}

impl StepMoments {
    /// Centroid Δt (s).
    pub fn centroid_dt(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum_dt / self.n as f64
        }
    }

    /// Centroid Δγ.
    pub fn centroid_dgamma(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum_dgamma / self.n as f64
        }
    }
}

/// Multi-particle tracker bound to an operating point.
#[derive(Debug, Clone)]
pub struct MultiParticleTracker {
    /// Operating point (machine, ion, γ_R, V̂).
    pub op: OperatingPoint,
    /// Worker configuration.
    pub config: TrackerConfig,
    /// The tracked bunch.
    pub ensemble: Ensemble,
    /// Completed revolutions.
    pub turn: u64,
    /// Scratch for the per-sub-chunk partial moments (reused across steps).
    partials: Vec<ChunkMoment>,
}

/// Chunk handed to one worker thread: `REDUCE_QUANTUM`-aligned so every
/// partial-moment slot is written by exactly one thread, sized by
/// `div_ceil` so the load splits evenly instead of starving the last thread.
fn chunk_len(n: usize, threads: usize, min_chunk: usize) -> usize {
    let per_thread = n.div_ceil(threads.max(1));
    let target = per_thread.max(min_chunk).max(1);
    target.div_ceil(REDUCE_QUANTUM) * REDUCE_QUANTUM
}

impl MultiParticleTracker {
    /// New tracker over an ensemble.
    pub fn new(op: OperatingPoint, ensemble: Ensemble, config: TrackerConfig) -> Self {
        Self {
            op,
            config,
            ensemble,
            turn: 0,
            partials: Vec::new(),
        }
    }

    /// Advance one revolution with the gap RF phase offset by
    /// `rf_phase_offset_rad` (phase jumps plus control action), stationary
    /// case (reference particle on set values, no net acceleration).
    /// Returns the post-step centroid moments from the in-step reduction.
    pub fn step(&mut self, rf_phase_offset_rad: f64) -> StepMoments {
        self.step_scaled(rf_phase_offset_rad, 1.0)
    }

    /// [`Self::step`] with the gap voltage scaled by `v_scale` — the
    /// plant-side cavity hook: a quench/trip multiplies the effective V̂
    /// seen by every particle this revolution. `v_scale = 1.0` is
    /// bit-identical to [`Self::step`] (multiplication by one is exact).
    pub fn step_scaled(&mut self, rf_phase_offset_rad: f64, v_scale: f64) -> StepMoments {
        let f_rev = self.op.f_rev();
        let f_rf = self.op.machine.rf_frequency(f_rev);
        let gamma_r = self.op.gamma_r;
        let eta = self.op.eta();
        let beta = self.op.beta_r();
        let params = KickParams {
            omega_rf: TWO_PI * f_rf,
            phase_rad: rf_phase_offset_rad,
            v_hat: self.op.v_gap_volts * v_scale,
            q_over_mc2: self.op.ion.gamma_per_volt(),
            drift: self.op.machine.orbit_length_m * eta / (beta * beta * beta * C) / gamma_r,
        };

        let n = self.ensemble.len();
        self.turn += 1;
        if n == 0 {
            return StepMoments {
                n,
                sum_dt: 0.0,
                sum_dgamma: 0.0,
            };
        }

        let backend = self.config.backend.resolve();
        let threads = self.config.threads.max(1);
        let chunk = chunk_len(n, threads, self.config.min_chunk);
        self.partials.clear();
        self.partials
            .resize(n.div_ceil(REDUCE_QUANTUM), ChunkMoment::default());

        let dts = &mut self.ensemble.dt[..];
        let dgs = &mut self.ensemble.dgamma[..];

        if threads == 1 || n <= chunk {
            kernel::kick_drift_chunk(backend, dts, dgs, &params, &mut self.partials);
        } else {
            let slots_per_chunk = chunk / REDUCE_QUANTUM;
            let params = &params;
            std::thread::scope(|s| {
                for ((dt_chunk, dg_chunk), part_chunk) in dts
                    .chunks_mut(chunk)
                    .zip(dgs.chunks_mut(chunk))
                    .zip(self.partials.chunks_mut(slots_per_chunk))
                {
                    s.spawn(move || {
                        kernel::kick_drift_chunk(backend, dt_chunk, dg_chunk, params, part_chunk)
                    });
                }
            });
        }
        let m = kernel::fold_moments(&self.partials);
        StepMoments {
            n,
            sum_dt: m.sum_dt,
            sum_dgamma: m.sum_dgamma,
        }
    }

    /// Track `turns` revolutions with a caller-supplied phase program
    /// (`phase(turn) -> offset rad`), recording the centroid each turn.
    /// Returns centroid Δt per turn (from the in-step fixed-tree reduction).
    pub fn run<F: Fn(u64) -> f64>(&mut self, turns: usize, phase: F) -> Vec<f64> {
        let mut out = Vec::with_capacity(turns);
        for _ in 0..turns {
            let m = self.step(phase(self.turn));
            out.push(m.centroid_dt());
        }
        out
    }

    /// Centroid phase in degrees at the RF harmonic (the Fig. 5 y-axis)
    /// for a given centroid Δt.
    pub fn phase_deg_of_dt(&self, centroid_dt: f64) -> f64 {
        centroid_dt * self.op.f_rf() * 360.0
    }

    /// Centroid phase in degrees at the RF harmonic, recomputed from the
    /// stored ensemble (sequential sum — use [`StepMoments`] on the hot
    /// path).
    pub fn centroid_phase_deg(&self) -> f64 {
        self.phase_deg_of_dt(self.ensemble.centroid_dt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cil_physics::distribution::BunchSpec;
    use cil_physics::machine::MachineParams;
    use cil_physics::synchrotron::SynchrotronCalc;
    use cil_physics::tracking::TwoParticleMap;
    use cil_physics::IonSpecies;

    fn op() -> OperatingPoint {
        let m = MachineParams::sis18();
        let ion = IonSpecies::n14_7plus();
        let v = SynchrotronCalc::new(m, ion)
            .voltage_for_fs(800e3, 1.28e3)
            .unwrap();
        OperatingPoint::from_revolution_frequency(m, ion, 800e3, v)
    }

    #[test]
    fn single_particle_matches_two_particle_map() {
        // One macro particle in the multiparticle tracker = the paper's
        // model; on the libm reference backend it must agree with
        // TwoParticleMap to float accuracy.
        let op = op();
        let dt0 = 8.0 / 360.0 / op.f_rf();
        let mut tracker = MultiParticleTracker::new(
            op,
            Ensemble::monoparticle(1, dt0, 0.0),
            TrackerConfig {
                threads: 1,
                min_chunk: 1,
                backend: KernelBackend::Libm,
            },
        );
        let mut map = TwoParticleMap::at_operating_point(&op);
        map.particle.dt = dt0;
        for _ in 0..2000 {
            tracker.step(0.0);
            map.step_stationary(op.v_gap_volts, 0.0);
            assert!(
                (tracker.ensemble.dt[0] - map.particle.dt).abs() < 1e-18,
                "turn {}: {} vs {}",
                tracker.turn,
                tracker.ensemble.dt[0],
                map.particle.dt
            );
        }
    }

    #[test]
    fn poly_kernel_tracks_libm_reference() {
        // Same single-particle trajectory on the polynomial kernel: the
        // ≤2-ulp sine error compounds over 2000 turns but must stay within
        // a tight absolute envelope of the libm path.
        let op = op();
        let dt0 = 8.0 / 360.0 / op.f_rf();
        let mk = |backend| {
            MultiParticleTracker::new(
                op,
                Ensemble::monoparticle(1, dt0, 0.0),
                TrackerConfig {
                    threads: 1,
                    min_chunk: 1,
                    backend,
                },
            )
        };
        let mut libm = mk(KernelBackend::Libm);
        let mut poly = mk(KernelBackend::Auto);
        for _ in 0..2000 {
            libm.step(0.0);
            poly.step(0.0);
        }
        let err = (libm.ensemble.dt[0] - poly.ensemble.dt[0]).abs();
        assert!(
            err < 1e-15,
            "poly drifted {err} s from libm after 2000 turns"
        );
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let op = op();
        let e = Ensemble::matched(&BunchSpec::gaussian(15e-9), 20_000, &op, 11).unwrap();
        let mut seq = MultiParticleTracker::new(
            op,
            e.clone(),
            TrackerConfig {
                threads: 1,
                min_chunk: 1,
                backend: KernelBackend::Auto,
            },
        );
        let mut par = MultiParticleTracker::new(
            op,
            e,
            TrackerConfig {
                threads: 8,
                min_chunk: 128,
                backend: KernelBackend::Auto,
            },
        );
        for _ in 0..50 {
            let ms = seq.step(0.1);
            let mp = par.step(0.1);
            assert_eq!(
                ms.sum_dt.to_bits(),
                mp.sum_dt.to_bits(),
                "centroid moment bits across threads"
            );
            assert_eq!(ms.sum_dgamma.to_bits(), mp.sum_dgamma.to_bits());
        }
        assert_eq!(
            seq.ensemble.dt, par.ensemble.dt,
            "bit-identical across threads"
        );
        assert_eq!(seq.ensemble.dgamma, par.ensemble.dgamma);
    }

    #[test]
    fn chunk_boundaries_are_deterministic() {
        // Satellite: the div_ceil chunking must (a) never under-fill the
        // thread pool the way `n / threads + 1` did, (b) stay aligned to
        // the reduction quantum, and (c) give every thread count the same
        // written bits and the same reduced moments.
        assert_eq!(chunk_len(20_000, 8, 128), 2560); // div_ceil(20000,8)=2500 → align 2560
        assert_eq!(chunk_len(20_000, 3, 1), 6912); // 6667 → aligned up
        assert_eq!(chunk_len(100, 8, 4096), 4096); // min_chunk dominates
        assert_eq!(chunk_len(1, 1, 1), REDUCE_QUANTUM);
        // Old bug shape: n=8000, threads=8 gave chunk=1001 → 8 chunks of
        // 1001/999… now 1024-aligned even split.
        assert_eq!(chunk_len(8000, 8, 1), 1024);
        for threads in [1usize, 2, 3, 5, 8] {
            let n = 8000;
            let chunk = chunk_len(n, threads, 1);
            assert_eq!(chunk % REDUCE_QUANTUM, 0);
            assert!(n.div_ceil(chunk) <= threads, "{threads} threads");
        }

        let op = op();
        let e = Ensemble::matched(&BunchSpec::gaussian(12e-9), 7_777, &op, 3).unwrap();
        let mut reference: Option<(Vec<f64>, Vec<f64>, Vec<u64>)> = None;
        for (threads, min_chunk) in [(1, 1), (2, 1), (3, 300), (8, 1), (8, 100_000)] {
            let mut tr = MultiParticleTracker::new(
                op,
                e.clone(),
                TrackerConfig {
                    threads,
                    min_chunk,
                    backend: KernelBackend::Auto,
                },
            );
            let mut moments = Vec::new();
            for _ in 0..20 {
                moments.push(tr.step(0.05).sum_dt.to_bits());
            }
            match &reference {
                None => reference = Some((tr.ensemble.dt, tr.ensemble.dgamma, moments)),
                Some((rd, rg, rm)) => {
                    assert_eq!(rd, &tr.ensemble.dt, "dt @ threads={threads}");
                    assert_eq!(rg, &tr.ensemble.dgamma, "dgamma @ threads={threads}");
                    assert_eq!(rm, &moments, "moments @ threads={threads}");
                }
            }
        }
    }

    #[test]
    fn coherent_oscillation_after_phase_jump() {
        // An 8° RF phase jump displaces the stable point; the centroid must
        // oscillate with first peak ≈ 2× the jump (in phase terms) around
        // the new equilibrium — the paper's key qualitative signature.
        let op = op();
        let e = Ensemble::matched(&BunchSpec::gaussian(10e-9), 5_000, &op, 5).unwrap();
        let mut tracker = MultiParticleTracker::new(
            op,
            e,
            TrackerConfig {
                threads: 4,
                min_chunk: 512,
                backend: KernelBackend::Auto,
            },
        );
        let jump = 8.0_f64.to_radians();
        let turns = (op.f_rev() / 1.28e3) as usize; // one synchrotron period
        let trace = tracker.run(turns, |_| jump);
        // Convert to degrees at the RF harmonic.
        let deg: Vec<f64> = trace.iter().map(|dt| dt * op.f_rf() * 360.0).collect();
        let min = deg.iter().cloned().fold(f64::MAX, f64::min);
        // Equilibrium moves to −8°; the centroid swings from 0 to ≈ −16°.
        assert!(min < -14.0 && min > -18.0, "first swing reaches {min} deg");
    }

    #[test]
    fn filamentation_decoheres_large_bunch() {
        // A *large* displaced bunch decoheres (Landau damping /
        // filamentation): the centroid amplitude shrinks over many periods
        // even without any control loop — the effect the paper says its
        // single-macro-particle model cannot show.
        let op = op();
        let mut e = Ensemble::matched(&BunchSpec::gaussian(40e-9), 20_000, &op, 9).unwrap();
        e.displace_dt(30e-9);
        let mut tracker = MultiParticleTracker::new(op, e, TrackerConfig::default());
        let period = (op.f_rev() / 1.28e3) as usize;
        let trace = tracker.run(period * 12, |_| 0.0);
        let early_peak = trace[..period]
            .iter()
            .cloned()
            .fold(0.0f64, |a, b| a.max(b.abs()));
        let late_peak = trace[period * 10..]
            .iter()
            .cloned()
            .fold(0.0f64, |a, b| a.max(b.abs()));
        assert!(
            late_peak < early_peak * 0.8,
            "decoherence: early {early_peak}, late {late_peak}"
        );
    }

    #[test]
    fn small_bunch_keeps_coherence_longer() {
        // The tighter the bunch, the smaller the synchrotron-frequency
        // spread, the slower the decoherence.
        let op = op();
        let run = |sigma: f64| {
            let mut e = Ensemble::matched(&BunchSpec::gaussian(sigma), 10_000, &op, 2).unwrap();
            e.displace_dt(20e-9);
            let mut tr = MultiParticleTracker::new(op, e, TrackerConfig::default());
            let period = (op.f_rev() / 1.28e3) as usize;
            let trace = tr.run(period * 8, |_| 0.0);
            trace[period * 7..]
                .iter()
                .cloned()
                .fold(0.0f64, |a, b| a.max(b.abs()))
        };
        let tight = run(5e-9);
        let wide = run(45e-9);
        assert!(
            tight > wide,
            "tight bunch stays coherent: {tight} vs {wide}"
        );
    }

    #[test]
    fn energy_conservation_in_stationary_bucket() {
        // Without acceleration the ensemble's mean Δγ stays ≈ 0 over long
        // tracking (symmetric kicks in a matched bunch).
        let op = op();
        let e = Ensemble::matched(&BunchSpec::gaussian(15e-9), 10_000, &op, 21).unwrap();
        let mut tr = MultiParticleTracker::new(op, e, TrackerConfig::default());
        for _ in 0..5_000 {
            tr.step(0.0);
        }
        let bucket = SynchrotronCalc::new(op.machine, op.ion)
            .bucket_half_height_dgamma(op.f_rev(), op.v_gap_volts)
            .unwrap();
        assert!(
            tr.ensemble.centroid_dgamma().abs() < bucket * 0.02,
            "mean dgamma = {}",
            tr.ensemble.centroid_dgamma()
        );
    }

    #[test]
    fn step_moments_match_sequential_centroid() {
        // The fixed-tree moments are a re-associated sum, not the
        // sequential one — but for a physical bunch they must agree to
        // rounding noise.
        let op = op();
        let e = Ensemble::matched(&BunchSpec::gaussian(15e-9), 9_999, &op, 7).unwrap();
        let mut tr = MultiParticleTracker::new(op, e, TrackerConfig::default());
        let m = tr.step(0.2);
        let seq = tr.ensemble.centroid_dt();
        assert!(
            (m.centroid_dt() - seq).abs() <= 1e-12 * seq.abs().max(1e-9),
            "tree {} vs sequential {seq}",
            m.centroid_dt()
        );
        assert_eq!(m.n, 9_999);
    }
}
