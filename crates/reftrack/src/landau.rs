//! Landau damping / filamentation diagnostics (Section V discussion).
//!
//! "Without the control loop, the real particle bunch in the accelerator
//! would also experience a decrease of the phase oscillation amplitude due
//! to Landau damping and filamentation … It would require the simulation of
//! tens of thousands of individual particles to see this effect."
//!
//! This module quantifies that effect from multi-particle traces so the
//! evaluation can show (a) the effect exists in the reference tracker, and
//! (b) the closed-loop damping is much faster — the paper's argument for
//! why one macro particle suffices in the HIL.

use cil_physics::modes::damping_time_turns;

/// Decoherence measurement of a centroid trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decoherence {
    /// Peak |centroid| in the first oscillation period (the launch amplitude).
    pub initial_amplitude: f64,
    /// Peak |centroid| in the last analysed period.
    pub final_amplitude: f64,
    /// e-folding time of the envelope in turns, if the envelope decays.
    pub damping_turns: Option<f64>,
}

/// Analyse the coherent-amplitude decay of a centroid trace.
///
/// `period_turns` is the synchrotron period in turns; the trace should span
/// several periods.
pub fn analyze_decoherence(trace: &[f64], period_turns: usize) -> Decoherence {
    assert!(period_turns >= 4, "period too short");
    assert!(trace.len() >= 2 * period_turns, "need at least two periods");
    let peak = |s: &[f64]| s.iter().cloned().fold(0.0f64, |a, b| a.max(b.abs()));
    let initial = peak(&trace[..period_turns]);
    let last = peak(&trace[trace.len() - period_turns..]);
    Decoherence {
        initial_amplitude: initial,
        final_amplitude: last,
        damping_turns: damping_time_turns(trace),
    }
}

/// Theoretical scaling check: the synchrotron-frequency spread of a bunch of
/// RMS phase extent `sigma_phi_rad` (at the RF harmonic) in a single-harmonic
/// bucket, relative to f_s: `Δf_s/f_s ≈ σ_φ²/16`. The reciprocal predicts
/// the decoherence time scale in synchrotron periods.
pub fn relative_fs_spread(sigma_phi_rad: f64) -> f64 {
    sigma_phi_rad * sigma_phi_rad / 16.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ensemble::Ensemble;
    use crate::tracker::{MultiParticleTracker, TrackerConfig};
    use cil_physics::distribution::BunchSpec;
    use cil_physics::machine::{MachineParams, OperatingPoint};
    use cil_physics::synchrotron::SynchrotronCalc;
    use cil_physics::IonSpecies;

    fn op() -> OperatingPoint {
        let m = MachineParams::sis18();
        let ion = IonSpecies::n14_7plus();
        let v = SynchrotronCalc::new(m, ion)
            .voltage_for_fs(800e3, 1.28e3)
            .unwrap();
        OperatingPoint::from_revolution_frequency(m, ion, 800e3, v)
    }

    #[test]
    fn synthetic_decay_measured() {
        let period = 100;
        let trace: Vec<f64> = (0..1200)
            .map(|i| {
                (std::f64::consts::TAU * i as f64 / period as f64).sin()
                    * (-(i as f64) / 400.0).exp()
            })
            .collect();
        let d = analyze_decoherence(&trace, period);
        assert!(d.initial_amplitude > 0.8);
        assert!(d.final_amplitude < 0.15);
        let tau = d.damping_turns.expect("decaying");
        assert!((tau - 400.0).abs() / 400.0 < 0.25, "tau = {tau}");
    }

    #[test]
    fn undamped_trace_reports_no_damping() {
        let period = 64;
        let trace: Vec<f64> = (0..640)
            .map(|i| (std::f64::consts::TAU * i as f64 / period as f64).sin())
            .collect();
        let d = analyze_decoherence(&trace, period);
        assert!((d.initial_amplitude - d.final_amplitude).abs() < 0.05);
    }

    #[test]
    fn fs_spread_grows_with_bunch_length() {
        assert!(relative_fs_spread(0.5) > relative_fs_spread(0.1));
        // 8 degrees: tiny spread.
        assert!(relative_fs_spread(8.0f64.to_radians()) < 2e-3);
    }

    #[test]
    fn damping_rate_matches_analytic_estimate() {
        // Order-of-magnitude closure with the analytic spread: a Gaussian
        // synchrotron-frequency spread Δf_s/f_s = σ_φ²/16 decoheres the
        // centroid on τ ≈ √2/(2π·f_s·spread) seconds, i.e.
        // √2·period/(2π·spread) turns. The small-amplitude formula ignores
        // the displacement and the tails, so assert the e-folding fit lands
        // within a factor of 4 — tight enough to catch a wrong power of
        // σ_φ, loose enough for the model error.
        use crate::ensemble::Ensemble;
        use crate::tracker::{MultiParticleTracker, TrackerConfig};
        use cil_physics::distribution::BunchSpec;
        let op = op();
        let period = (op.f_rev() / 1.28e3) as usize;
        let sigma_t = 45e-9;
        let mut e = Ensemble::matched(&BunchSpec::gaussian(sigma_t), 20_000, &op, 13).unwrap();
        e.displace_dt(8e-9); // small displacement: stay near the linear regime
        let mut tr = MultiParticleTracker::new(op, e, TrackerConfig::default());
        let trace = tr.run(period * 10, |_| 0.0);
        let measured = analyze_decoherence(&trace, period)
            .damping_turns
            .expect("displaced wide bunch must decohere");
        let sigma_phi = std::f64::consts::TAU * op.f_rf() * sigma_t;
        let spread = relative_fs_spread(sigma_phi);
        let predicted = std::f64::consts::SQRT_2 * period as f64 / (std::f64::consts::TAU * spread);
        let ratio = measured / predicted;
        assert!(
            (0.25..4.0).contains(&ratio),
            "measured {measured} turns vs analytic {predicted} (ratio {ratio})"
        );
    }

    #[test]
    fn wider_bunch_decoheres_faster_quantitatively() {
        let op = op();
        let period = (op.f_rev() / 1.28e3) as usize;
        let measure = |sigma_t: f64| {
            let mut e = Ensemble::matched(&BunchSpec::gaussian(sigma_t), 20_000, &op, 31).unwrap();
            e.displace_dt(15e-9);
            let mut tr = MultiParticleTracker::new(op, e, TrackerConfig::default());
            let trace = tr.run(period * 10, |_| 0.0);
            analyze_decoherence(&trace, period)
        };
        let narrow = measure(10e-9);
        let wide = measure(40e-9);
        let retention = |d: &Decoherence| d.final_amplitude / d.initial_amplitude;
        assert!(
            retention(&wide) < retention(&narrow),
            "wide bunch must lose more coherent amplitude: {} vs {}",
            retention(&wide),
            retention(&narrow)
        );
    }
}
