//! Structure-of-arrays particle storage.
//!
//! Hot tracking loops touch `dt[i]` and `dgamma[i]` streams linearly, so the
//! two coordinates live in separate contiguous buffers (auto-vectorisation
//! friendly, cache-line efficient — the layout every production tracking
//! code uses).

use cil_physics::distribution::BunchSpec;
use cil_physics::machine::OperatingPoint;
use cil_physics::synchrotron::SynchrotronError;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A bunch of macro particles in longitudinal phase space.
#[derive(Debug, Clone)]
pub struct Ensemble {
    /// Arrival-time deviations, seconds.
    pub dt: Vec<f64>,
    /// Energy deviations Δγ.
    pub dgamma: Vec<f64>,
}

impl Ensemble {
    /// Sample `n` particles matched to the bucket at `op`, deterministic in
    /// `seed`.
    pub fn matched(
        spec: &BunchSpec,
        n: usize,
        op: &OperatingPoint,
        seed: u64,
    ) -> Result<Self, SynchrotronError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let (dt, dgamma) = spec.sample(n, op, &mut rng)?;
        Ok(Self { dt, dgamma })
    }

    /// An ensemble with every particle at the same phase-space point — n
    /// copies of the paper's single macro particle, for convergence checks.
    pub fn monoparticle(n: usize, dt: f64, dgamma: f64) -> Self {
        Self {
            dt: vec![dt; n],
            dgamma: vec![dgamma; n],
        }
    }

    /// Number of macro particles.
    pub fn len(&self) -> usize {
        self.dt.len()
    }

    /// True if the ensemble is empty.
    pub fn is_empty(&self) -> bool {
        self.dt.is_empty()
    }

    /// Mean arrival-time deviation (the dipole coordinate of Fig. 5).
    pub fn centroid_dt(&self) -> f64 {
        self.dt.iter().sum::<f64>() / self.dt.len() as f64
    }

    /// RMS bunch length about the centroid (the quadrupole coordinate).
    pub fn rms_dt(&self) -> f64 {
        let c = self.centroid_dt();
        (self.dt.iter().map(|t| (t - c) * (t - c)).sum::<f64>() / self.dt.len() as f64).sqrt()
    }

    /// Mean energy deviation.
    pub fn centroid_dgamma(&self) -> f64 {
        self.dgamma.iter().sum::<f64>() / self.dgamma.len() as f64
    }

    /// Shift every particle in time (a coherent displacement, e.g. as
    /// imposed by an injection error).
    pub fn displace_dt(&mut self, delta: f64) {
        for t in &mut self.dt {
            *t += delta;
        }
    }

    /// Line-density histogram of arrival times over `[lo, hi)` with `bins`
    /// bins — the synthetic pickup profile.
    pub fn profile(&self, lo: f64, hi: f64, bins: usize) -> Vec<u32> {
        assert!(bins >= 1 && hi > lo);
        let mut h = vec![0u32; bins];
        let w = (hi - lo) / bins as f64;
        for &t in &self.dt {
            if t >= lo && t < hi {
                h[((t - lo) / w) as usize] += 1;
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cil_physics::machine::MachineParams;
    use cil_physics::synchrotron::SynchrotronCalc;
    use cil_physics::IonSpecies;

    fn op() -> OperatingPoint {
        let m = MachineParams::sis18();
        let ion = IonSpecies::n14_7plus();
        let v = SynchrotronCalc::new(m, ion)
            .voltage_for_fs(800e3, 1.28e3)
            .unwrap();
        OperatingPoint::from_revolution_frequency(m, ion, 800e3, v)
    }

    #[test]
    fn matched_is_deterministic_in_seed() {
        let spec = BunchSpec::gaussian(15e-9);
        let a = Ensemble::matched(&spec, 1000, &op(), 7).unwrap();
        let b = Ensemble::matched(&spec, 1000, &op(), 7).unwrap();
        let c = Ensemble::matched(&spec, 1000, &op(), 8).unwrap();
        assert_eq!(a.dt, b.dt);
        assert_ne!(a.dt, c.dt);
    }

    #[test]
    fn centroid_and_rms() {
        let e = Ensemble {
            dt: vec![-1.0, 1.0, 3.0],
            dgamma: vec![0.0; 3],
        };
        assert!((e.centroid_dt() - 1.0).abs() < 1e-12);
        let expected_rms = (8.0f64 / 3.0).sqrt();
        assert!((e.rms_dt() - expected_rms).abs() < 1e-12);
    }

    #[test]
    fn displacement_moves_centroid_not_rms() {
        let mut e = Ensemble::matched(&BunchSpec::gaussian(15e-9), 10_000, &op(), 1).unwrap();
        let rms0 = e.rms_dt();
        e.displace_dt(5e-9);
        assert!((e.centroid_dt() - 5e-9).abs() < 1e-9);
        assert!((e.rms_dt() - rms0).abs() < 1e-15);
    }

    #[test]
    fn profile_counts_all_in_range() {
        let e = Ensemble::monoparticle(100, 0.0, 0.0);
        let h = e.profile(-1.0, 1.0, 4);
        assert_eq!(h.iter().sum::<u32>(), 100);
        assert_eq!(h[2], 100, "all particles in the bin containing 0");
    }

    #[test]
    fn profile_of_gaussian_peaks_in_middle() {
        let e = Ensemble::matched(&BunchSpec::gaussian(10e-9), 100_000, &op(), 3).unwrap();
        let h = e.profile(-40e-9, 40e-9, 16);
        let max_bin = h.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0;
        assert!((7..=8).contains(&max_bin), "peak bin {max_bin}");
    }
}
