//! Criterion: CGRA toolchain and executor performance.
//!
//! Two claims are quantified:
//! * the "reconfiguration in seconds" workflow — C source → DFG →
//!   schedule → context memories must be interactive, not hours of
//!   synthesis;
//! * the cycle-accurate executor's iteration rate (relevant for how fast
//!   the *simulated* CGRA runs inside our HIL, not for the FPGA itself).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use cil_cgra::context::ContextMemories;
use cil_cgra::exec::{CgraExecutor, MapBus};
use cil_cgra::frontend::compile;
use cil_cgra::grid::GridConfig;
use cil_cgra::kernels::{beam_kernel_source, build_beam_kernel, KernelParams};
use cil_cgra::sched::ListScheduler;

fn bench_toolchain(c: &mut Criterion) {
    let params = KernelParams::mde_default();
    let mut g = c.benchmark_group("cgra_toolchain");

    let source = beam_kernel_source(&params, 8, true);
    g.bench_function("compile_c_source_8bunch", |b| {
        b.iter(|| black_box(compile(&source).unwrap()));
    });

    let kernel = build_beam_kernel(&params, 8, true);
    let sched = ListScheduler::new(GridConfig::mesh_5x5());
    g.bench_function("schedule_8bunch_5x5", |b| {
        b.iter(|| black_box(sched.schedule(&kernel.kernel.dfg)));
    });

    let schedule = sched.schedule(&kernel.kernel.dfg);
    g.bench_function("context_pack_unpack", |b| {
        let ctx = ContextMemories::from_schedule(&kernel.kernel.dfg, &schedule);
        b.iter(|| {
            let img = ctx.pack();
            black_box(ContextMemories::unpack(&img).unwrap())
        });
    });

    g.bench_function("full_toolchain_source_to_contexts", |b| {
        b.iter(|| {
            let k = build_beam_kernel(&params, 8, true);
            let s = sched.schedule(&k.kernel.dfg);
            black_box(ContextMemories::from_schedule(&k.kernel.dfg, &s).pack())
        });
    });

    g.finish();
}

fn bench_executor(c: &mut Criterion) {
    let params = KernelParams::mde_default();
    let mut g = c.benchmark_group("cgra_executor");
    g.throughput(Throughput::Elements(1));

    for bunches in [1usize, 8] {
        let kernel = build_beam_kernel(&params, bunches, true);
        let schedule = ListScheduler::new(GridConfig::mesh_5x5()).schedule(&kernel.kernel.dfg);
        let mut ex = CgraExecutor::new(kernel.kernel.dfg.clone(), schedule);
        for &(r, v) in &kernel.kernel.reg_inits {
            ex.set_reg(r, v);
        }
        let mut bus = MapBus::default();
        bus.set_sensor(0, 1.25e-6);
        bus.set_sensor(1, 0.01);
        bus.set_sensor(2, 0.02);
        g.bench_function(format!("iteration_{bunches}bunch"), |b| {
            b.iter(|| {
                bus.writes.clear();
                black_box(ex.run_iteration(&mut bus, &[]))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_toolchain, bench_executor);
criterion_main!(benches);
