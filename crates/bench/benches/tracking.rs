//! Criterion: turn-level tracking throughput against the real-time bar.
//!
//! The paper's hard requirement: one model update per revolution, with
//! revolution frequencies up to ≈1.4 MHz (SIS18) — i.e. ≥1.4 M updates/s.
//! These benches measure what the two-particle map and the closed-loop
//! turn-level executive achieve on a general-purpose CPU, the baseline the
//! paper rejected for jitter (Section I) — note that meeting the *average*
//! rate here says nothing about worst-case jitter (see `jitter_table`).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use cil_core::control::{BeamPhaseController, ControllerParams};
use cil_physics::machine::{MachineParams, OperatingPoint};
use cil_physics::synchrotron::SynchrotronCalc;
use cil_physics::tracking::{ExactMap, TwoParticleMap};
use cil_physics::IonSpecies;

fn mde_op() -> OperatingPoint {
    let m = MachineParams::sis18();
    let ion = IonSpecies::n14_7plus();
    let v = SynchrotronCalc::new(m, ion)
        .voltage_for_fs(800e3, 1.28e3)
        .unwrap();
    OperatingPoint::from_revolution_frequency(m, ion, 800e3, v)
}

fn bench_two_particle_map(c: &mut Criterion) {
    let op = mde_op();
    let mut g = c.benchmark_group("turn_level");
    g.throughput(Throughput::Elements(1));

    g.bench_function("two_particle_map_step", |b| {
        let mut map = TwoParticleMap::at_operating_point(&op);
        map.particle.dt = 5e-9;
        b.iter(|| black_box(map.step_stationary(op.v_gap_volts, 0.0)));
    });

    g.bench_function("exact_map_step", |b| {
        let mut map = ExactMap::from_linear(&TwoParticleMap::at_operating_point(&op));
        map.dt = 5e-9;
        b.iter(|| black_box(map.step_stationary(op.v_gap_volts, 0.0)));
    });

    g.bench_function("map_step_plus_controller", |b| {
        let mut map = TwoParticleMap::at_operating_point(&op);
        map.particle.dt = 5e-9;
        let mut ctrl = BeamPhaseController::new(ControllerParams::evaluation_default(), 800e3);
        let mut phase = 0.0f64;
        b.iter(|| {
            let dt = map.step_stationary(op.v_gap_volts, phase);
            let deg = dt * op.f_rf() * 360.0;
            if let Some(u) = ctrl.push_measurement(deg) {
                phase += u * 1e-8;
            }
            black_box(dt)
        });
    });

    g.finish();
}

criterion_group!(benches, bench_two_particle_map);
criterion_main!(benches);
