//! Criterion: the signal-level chain, component by component and end to
//! end (samples/s through the full framework).
//!
//! The end-to-end number, divided into 250 MS/s, is the slowdown factor of
//! our software model vs the real-time hardware — the cost of fidelity
//! that ablation A6 reports at experiment scale.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use cil_core::framework::SimulatorFramework;
use cil_core::scenario::MdeScenario;
use cil_core::signalgen::{PhaseJumpProgram, SignalBench};
use cil_dsp::dds::Dds;
use cil_dsp::fir::FirFilter;
use cil_dsp::period::PeriodLengthDetector;
use cil_dsp::phase_detector::PhaseDetector;
use cil_dsp::ring_buffer::CaptureRingBuffer;

fn bench_components(c: &mut Criterion) {
    let mut g = c.benchmark_group("dsp_components");
    g.throughput(Throughput::Elements(1));

    g.bench_function("dds_tick", |b| {
        let mut dds = Dds::standard(250e6);
        dds.set_frequency(3.2e6);
        b.iter(|| black_box(dds.tick()));
    });

    g.bench_function("ring_buffer_push_read", |b| {
        let mut buf = CaptureRingBuffer::paper_sized();
        let mut i = 0u64;
        b.iter(|| {
            buf.push(i as f64);
            i += 1;
            black_box(buf.read_back(100))
        });
    });

    g.bench_function("period_detector_push", |b| {
        let mut det = PeriodLengthDetector::paper_default();
        let mut ph = 0.0f64;
        b.iter(|| {
            ph += std::f64::consts::TAU * 800e3 / 250e6;
            black_box(det.push(ph.sin()))
        });
    });

    g.bench_function("phase_detector_push", |b| {
        let mut det = PhaseDetector::new(0.2, 4.0, 312.5);
        let mut i = 0u64;
        b.iter(|| {
            let t = i as f64;
            i += 1;
            let r = (std::f64::consts::TAU * t / 312.5).sin();
            let beam = (-0.5 * ((t % 312.5 - 50.0) / 5.0).powi(2)).exp();
            black_box(det.push(r, beam))
        });
    });

    g.bench_function("fir_63tap_push", |b| {
        let mut f = FirFilter::lowpass(0.01, 63);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(f.push((i as f64 * 0.01).sin()))
        });
    });

    g.finish();
}

fn bench_framework(c: &mut Criterion) {
    let mut g = c.benchmark_group("signal_level");
    g.throughput(Throughput::Elements(1));

    let mut s = MdeScenario::nov24_2023();
    s.bunches = 1;
    let mut fw = SimulatorFramework::new(s.framework_config(), s.kernel_params().unwrap());
    let mut bench = SignalBench::new(
        250e6,
        s.f_rev,
        s.harmonic(),
        s.adc_amplitude,
        s.adc_amplitude,
        PhaseJumpProgram::evaluation_default(),
    );
    g.bench_function("framework_push_sample", |b| {
        b.iter(|| {
            let (r, gp) = bench.tick();
            black_box(fw.push_sample(r, gp))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_components, bench_framework);
criterion_main!(benches);
