//! Criterion: multi-particle reference tracker throughput and thread
//! scaling.
//!
//! The paper cites ESME/LONG1D/BLonD-class codes as "far from the
//! real-time requirements" (Section II); this bench puts a number on it:
//! particle-turns/s for realistic ensemble sizes, sequential vs parallel.
//! For real time, a 10⁴-particle bunch at 800 kHz would need 8 × 10⁹
//! particle-turns/s.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cil_physics::distribution::BunchSpec;
use cil_physics::machine::{MachineParams, OperatingPoint};
use cil_physics::synchrotron::SynchrotronCalc;
use cil_physics::IonSpecies;
use cil_reftrack::ensemble::Ensemble;
use cil_reftrack::kernel::KernelBackend;
use cil_reftrack::tracker::{MultiParticleTracker, TrackerConfig};

fn mde_op() -> OperatingPoint {
    let m = MachineParams::sis18();
    let ion = IonSpecies::n14_7plus();
    let v = SynchrotronCalc::new(m, ion)
        .voltage_for_fs(800e3, 1.28e3)
        .unwrap();
    OperatingPoint::from_revolution_frequency(m, ion, 800e3, v)
}

fn bench_tracker(c: &mut Criterion) {
    let op = mde_op();
    let mut g = c.benchmark_group("reftrack");

    for &n in &[1_000usize, 10_000, 100_000] {
        g.throughput(Throughput::Elements(n as u64));
        let ensemble = Ensemble::matched(&BunchSpec::gaussian(15e-9), n, &op, 7).unwrap();

        for backend in KernelBackend::poly_available() {
            g.bench_with_input(
                BenchmarkId::new(format!("turn_{}", backend.label()), n),
                &n,
                |b, _| {
                    let mut tr = MultiParticleTracker::new(
                        op,
                        ensemble.clone(),
                        TrackerConfig {
                            threads: 1,
                            min_chunk: 1 << 30,
                            backend,
                        },
                    );
                    b.iter(|| {
                        tr.step(0.0);
                        black_box(tr.ensemble.dt[0])
                    });
                },
            );
        }

        g.bench_with_input(BenchmarkId::new("turn_seq", n), &n, |b, _| {
            let mut tr = MultiParticleTracker::new(
                op,
                ensemble.clone(),
                TrackerConfig {
                    threads: 1,
                    min_chunk: 1 << 30,
                    backend: KernelBackend::Libm,
                },
            );
            b.iter(|| {
                tr.step(0.0);
                black_box(tr.ensemble.dt[0])
            });
        });

        let threads = std::thread::available_parallelism().map_or(4, |v| v.get());
        g.bench_with_input(
            BenchmarkId::new(format!("turn_par_{threads}t"), n),
            &n,
            |b, _| {
                let mut tr = MultiParticleTracker::new(
                    op,
                    ensemble.clone(),
                    TrackerConfig {
                        threads,
                        min_chunk: 4096,
                        backend: KernelBackend::Auto,
                    },
                );
                b.iter(|| {
                    tr.step(0.0);
                    black_box(tr.ensemble.dt[0])
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_tracker);
criterion_main!(benches);
