//! Release-only overhead guard for the campaign runner.
//!
//! The campaign layer's durability (WAL shard commits, per-point
//! `catch_unwind`, retry bookkeeping) must stay cheap next to the
//! simulation it wraps: the same point list run through a `Campaign` must
//! take no more than 1.15x the wall time of a raw
//! `parallel_sweep_with_merge` over identical work. Meaningless at
//! opt-level 0, so ignored in debug builds and run via `--include-ignored`
//! in release (tier1/CI) — the same pattern as the loop and checkpoint
//! guards. Interleaves best-of-3 passes of both variants so ambient load
//! hits both sides alike.

use cil_core::campaign::{Campaign, CampaignConfig};
use cil_core::hil::{EngineKind, TurnLevelLoop};
use cil_core::scenario::MdeScenario;
use cil_core::sweep::{parallel_sweep_with_merge, EngineArena};
use std::path::PathBuf;
use std::time::Instant;

fn points() -> Vec<MdeScenario> {
    (0..256)
        .map(|i| {
            let mut s = MdeScenario::nov24_2023();
            s.duration_s = 0.002;
            s.bunches = 1;
            s.jumps.interval_s = 0.0008;
            s.controller.gain = -1.0 - 0.05 * f64::from(i);
            s
        })
        .collect()
}

fn run_point(arena: &mut EngineArena, s: &MdeScenario) -> f64 {
    let engine = arena.engine(s, EngineKind::Map).expect("engine builds");
    let r = TurnLevelLoop::new(s.clone(), EngineKind::Map)
        .run_on(engine, true)
        .expect("loop runs");
    r.phase_deg.values.iter().map(|v| v.abs()).sum()
}

#[test]
#[cfg_attr(debug_assertions, ignore)]
fn campaign_overhead_within_bound_of_raw_sweep() {
    let points = points();
    let threads = std::thread::available_parallelism().map_or(1, |v| v.get());
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/campaign-guard");

    let raw = |pts: &[MdeScenario]| {
        parallel_sweep_with_merge(pts, threads, EngineArena::new, run_point, |_| {})
    };
    let campaign = |pts: &[MdeScenario]| {
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = CampaignConfig::new(&dir, &["sum_abs_phase"]);
        cfg.shard_points = 32;
        cfg.workers = threads;
        Campaign::new(pts, cfg)
            .expect("config is valid")
            .run(|w, s| Ok(vec![run_point(&mut w.arena, s)]))
            .expect("campaign runs")
    };

    // Warmup both paths, then interleave best-of-3.
    let _ = raw(&points[..8]);
    let _ = campaign(&points[..8]);
    let mut best_raw = f64::INFINITY;
    let mut best_campaign = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        let out = raw(&points);
        best_raw = best_raw.min(t.elapsed().as_secs_f64());
        assert_eq!(out.len(), points.len());

        let t = Instant::now();
        let report = campaign(&points);
        best_campaign = best_campaign.min(t.elapsed().as_secs_f64());
        assert_eq!(report.completed, points.len());
        assert_eq!(report.quarantined, 0);
    }

    let overhead = best_campaign / best_raw;
    assert!(
        overhead <= 1.15,
        "campaign {best_campaign:.3}s vs raw sweep {best_raw:.3}s — overhead {overhead:.3}x \
         exceeds the 1.15x bound"
    );
}
