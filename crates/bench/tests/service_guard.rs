//! Release-only throughput regression guard for the SessionMux service
//! path.
//!
//! The mux's standing perf claim: hosting 1000 skewed sessions must not
//! cost more than 2x over running the same rows in a single bare loop —
//! the aggregate fleet rate stays at ≥0.5x the single-loop `map_batched`
//! baseline even on one worker, slicing, arena checkout and queue
//! traffic included. On machines with ≥8 cores the 1→8 worker scaling
//! must additionally reach ≥2.5x. Meaningless at opt-level 0, so the
//! test is ignored in debug builds and run via `--include-ignored` in
//! release (tier1/CI) — the same pattern as the loop and checkpoint
//! guards. Writes `results/BENCH_service.json` as a side effect, so CI
//! always uploads a fresh artifact.

use cil_bench::service_bench::{baseline_map_rate, run_service_bench, scaling, write_service_json};

#[test]
#[cfg_attr(debug_assertions, ignore)]
fn fleet_aggregate_holds_half_the_single_loop_rate() {
    let sessions = 1000;
    let hot_revolutions = 2000;
    // A long, best-of-3 baseline: at 2k revolutions the measurement is
    // ~0.2 ms and machine noise dominates the guard's ratio.
    let baseline = baseline_map_rate(200_000, 3);
    let rows = run_service_bench(&[1, 2, 4, 8], sessions, hot_revolutions, 3);
    write_service_json(hot_revolutions, &rows, baseline, 0.5);

    let single = rows.iter().find(|r| r.workers == 1).expect("1-worker row");
    let ratio = single.revs_per_sec / baseline;
    assert!(
        ratio >= 0.5,
        "1-worker fleet aggregate only {ratio:.2}x the single-loop map_batched rate \
         (bound 0.5x): {rows:#?}"
    );
    for r in &rows {
        assert!(
            r.p99_dispatch_s.is_finite() && r.p99_dispatch_s > 0.0,
            "{} workers: dispatch-latency histogram must fill",
            r.workers
        );
    }

    // The scaling half of the claim needs real cores behind the workers;
    // oversubscribed threads on a small box would measure the scheduler,
    // not the mux.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= 8 {
        let s = scaling(&rows, 8, 1);
        assert!(
            s >= 2.5,
            "1 -> 8 worker scaling only {s:.2}x on a {cores}-core machine \
             (bound 2.5x): {rows:#?}"
        );
    } else {
        eprintln!("skipping the 8-worker scaling bound: only {cores} cores available");
    }
}
