//! Release-only throughput regression guard for the RefTrack wide-lane
//! kernel.
//!
//! The acceptance bar for the kernel PR was "`reftrack_batched` at ≥ 3x the
//! recorded `BENCH_loop.json` baseline". An absolute revs/s bound is hostage
//! to whatever box CI lands on, so the guard pins the box-independent form:
//! measured in the same process on the same ensembles,
//!
//! * the polynomial kernel (best measured backend — `Auto` resolves to the
//!   widest, so its row measures the same code) must hold ≥ 3x the
//!   host-libm backend on the kernel-dominated large sequential case, and
//! * the full closed loop (`RefTrackEngine` through the batched harness,
//!   the exact `reftrack_batched` path) must hold ≥ 1.5x on `Auto` vs libm
//!   at the standing 256 macro-particle case, where harness bookkeeping
//!   dilutes the raw kernel ratio.
//!
//! Meaningless at opt-level 0, so the test is ignored in debug builds and
//! run via `--include-ignored` in release (tier1/CI) — the same pattern as
//! `loop_guard`. Writes `results/BENCH_reftrack.json` as a side effect, so
//! CI always uploads a fresh artifact.

use cil_bench::reftrack_bench::{
    guard_ratios, run_reftrack_bench, write_bench_json, ENGINE_BOUND, KERNEL_BOUND,
};

#[test]
#[cfg_attr(debug_assertions, ignore)]
fn poly_kernel_beats_libm_reference() {
    let rows = run_reftrack_bench(5_000, 3);
    let (kernel_ratio, engine_ratio) = guard_ratios(&rows);
    write_bench_json(3, &rows);
    assert!(
        kernel_ratio >= KERNEL_BOUND,
        "polynomial kernel only {kernel_ratio:.2}x host libm \
         (bound {KERNEL_BOUND}x): {rows:#?}"
    );
    assert!(
        engine_ratio >= ENGINE_BOUND,
        "closed-loop RefTrack engine on Auto only {engine_ratio:.2}x libm \
         (bound {ENGINE_BOUND}x): {rows:#?}"
    );
}
