//! Release-only throughput regression guard for the closed-loop hot path.
//!
//! The micro-op plan + batched `step_block` combination is this repo's
//! standing perf claim: the CGRA fidelity replaying the pre-decoded plan in
//! harness-default blocks must stay at least 1.5x the legacy per-turn
//! per-node DFG walk, measured in the same process on the same scenario.
//! Meaningless at opt-level 0, so the test is ignored in debug builds and
//! run via `--include-ignored` in release (tier1/CI) — the same pattern as
//! the telemetry and checkpoint guards. Writes `results/BENCH_loop.json`
//! as a side effect, so CI always uploads a fresh artifact.

use cil_bench::loop_bench::{run_loop_bench, speedup, write_bench_json};

#[test]
#[cfg_attr(debug_assertions, ignore)]
fn planned_batched_loop_beats_legacy_per_turn_walk() {
    let revolutions = 10_000;
    let runs = 5;
    let rows = run_loop_bench(revolutions, runs);
    for r in &rows {
        assert_eq!(
            r.revolutions, rows[0].revolutions,
            "{}: all cases must run the same loop",
            r.label
        );
    }
    let ratio = speedup(&rows, "cgra_plan_batched", "cgra_walk_per_turn");
    let ratio_observed = speedup(&rows, "cgra_plan_observed", "cgra_walk_per_turn");
    write_bench_json(revolutions, runs, &rows, ratio, ratio_observed, 1.5);
    assert!(
        ratio >= 1.5,
        "plan+batched CGRA only {ratio:.2}x the legacy per-turn walk (bound 1.5x): {rows:#?}"
    );
    // The event-core claim: an attached (sampled) observer no longer forces
    // per-turn stepping, so the observed batched loop must hold the same
    // bound over the legacy per-turn walk.
    assert!(
        ratio_observed >= 1.5,
        "observer-attached plan+batched CGRA only {ratio_observed:.2}x the legacy per-turn walk \
         (bound 1.5x): {rows:#?}"
    );
}
