//! Standing closed-loop throughput benchmark (revolutions per second).
//!
//! Measures the full harness + engine hot loop — the path every executive,
//! sweep and ablation sits on — for each fidelity and execution mode this
//! repo ships: the pre-decoded micro-op plan vs the legacy per-node DFG
//! walk (CGRA fidelity), and batched [`step_block`] stepping vs per-turn
//! blocks. The `bench_loop` binary prints the table and writes
//! `results/BENCH_loop.json`; the release-only `loop_guard` test pins the
//! plan+batched path at ≥1.5x the legacy per-turn walk so the optimisation
//! cannot silently regress.
//!
//! [`step_block`]: cil_core::engine::BeamEngine::step_block

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use cil_core::engine::{BeamEngine, CgraEngine, EngineKind};
use cil_core::harness::{LoopHarness, DEFAULT_BLOCK_ROWS};
use cil_core::scenario::MdeScenario;

/// The benchmark scenario: the Nov-24 MDE operating point trimmed to
/// `revolutions` turns of a single bunch, loop closed (the multi-bunch
/// executive has its own criterion bench).
pub fn bench_scenario(revolutions: u64) -> MdeScenario {
    let mut s = MdeScenario::nov24_2023();
    s.bunches = 1;
    s.duration_s = revolutions as f64 / s.f_rev;
    s
}

/// Which engine + execution path a case exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseKind {
    /// Analytic two-particle map.
    Map,
    /// CGRA executor replaying the pre-decoded micro-op plan.
    CgraPlan,
    /// CGRA executor on the legacy per-node DFG walk (the differential
    /// oracle — and the baseline this PR's plan replaces).
    CgraWalk,
    /// Multi-particle reference tracker.
    RefTrack,
}

/// One benchmark configuration.
#[derive(Debug, Clone, Copy)]
pub struct CaseSpec {
    /// Stable case id, `fidelity_mode` (keys the JSON artifact).
    pub label: &'static str,
    /// Engine + execution path.
    pub kind: CaseKind,
    /// Force one-row step blocks (per-turn stepping) instead of the
    /// harness default batch.
    pub per_turn: bool,
    /// Attach a sampled observer hook (cadence = the default block size).
    /// Under the event-scheduled core an observer no longer forces
    /// per-turn stepping, so this case must stay near the unobserved
    /// batched throughput.
    pub observed: bool,
}

/// Particles in the reference-tracker case — enough to be representative,
/// small enough that the case doesn't dominate the benchmark's runtime.
pub const REFTRACK_PARTICLES: usize = 256;

/// Every fidelity × mode the standing benchmark covers.
pub fn standard_cases() -> Vec<CaseSpec> {
    vec![
        CaseSpec {
            label: "map_batched",
            kind: CaseKind::Map,
            per_turn: false,
            observed: false,
        },
        CaseSpec {
            label: "map_per_turn",
            kind: CaseKind::Map,
            per_turn: true,
            observed: false,
        },
        CaseSpec {
            label: "cgra_plan_batched",
            kind: CaseKind::CgraPlan,
            per_turn: false,
            observed: false,
        },
        CaseSpec {
            label: "cgra_plan_observed",
            kind: CaseKind::CgraPlan,
            per_turn: false,
            observed: true,
        },
        CaseSpec {
            label: "cgra_plan_per_turn",
            kind: CaseKind::CgraPlan,
            per_turn: true,
            observed: false,
        },
        CaseSpec {
            label: "cgra_walk_batched",
            kind: CaseKind::CgraWalk,
            per_turn: false,
            observed: false,
        },
        CaseSpec {
            label: "cgra_walk_per_turn",
            kind: CaseKind::CgraWalk,
            per_turn: true,
            observed: false,
        },
        CaseSpec {
            label: "reftrack_batched",
            kind: CaseKind::RefTrack,
            per_turn: false,
            observed: false,
        },
    ]
}

/// One measured configuration of the standing loop benchmark.
#[derive(Debug, Clone)]
pub struct LoopBenchRow {
    /// Stable case id (`fidelity_mode`).
    pub label: &'static str,
    /// Measured rows per run.
    pub revolutions: u64,
    /// Best-of-runs wall clock, seconds.
    pub wall_s: f64,
    /// `revolutions / wall_s`.
    pub revs_per_sec: f64,
}

fn build_engine(s: &MdeScenario, kind: CaseKind) -> Box<dyn BeamEngine> {
    match kind {
        CaseKind::Map => EngineKind::Map.build(s).expect("map engine builds"),
        CaseKind::CgraPlan | CaseKind::CgraWalk => {
            let mut e = CgraEngine::from_scenario(s, 1, &[]).expect("cgra engine builds");
            e.set_nodewalk(kind == CaseKind::CgraWalk);
            Box::new(e)
        }
        CaseKind::RefTrack => EngineKind::RefTrack {
            particles: REFTRACK_PARTICLES,
            seed: 0x5EED,
        }
        .build(s)
        .expect("reftrack engine builds"),
    }
}

/// Measure one case: best-of-`runs` wall clock over the closed loop.
/// Engine construction (and for the CGRA fidelity the cached kernel
/// compile) happens outside the timed region — this benchmarks the hot
/// loop, not setup.
pub fn measure_case(s: &MdeScenario, case: CaseSpec, runs: usize) -> LoopBenchRow {
    let mut best = f64::INFINITY;
    let mut rows = 0u64;
    for _ in 0..runs {
        let mut engine = build_engine(s, case.kind);
        let mut harness = LoopHarness::for_scenario(s, true);
        if case.per_turn {
            harness = harness
                .with_block_rows(1)
                .expect("per-turn block size is valid");
        }
        let t0 = Instant::now();
        let trace = if case.observed {
            // A sampled observer at the default block cadence: the event
            // core schedules it between blocks, so the hot loop stays
            // batched. `black_box` keeps the hook from optimising away.
            harness
                .run_with_every(
                    engine.as_mut(),
                    s.duration_s,
                    DEFAULT_BLOCK_ROWS as u64,
                    |e| {
                        std::hint::black_box(e.time());
                    },
                )
                .expect("observer cadence is valid")
        } else {
            harness.run(engine.as_mut(), s.duration_s)
        };
        let dt = t0.elapsed().as_secs_f64();
        assert!(
            trace.outcome.survived(),
            "{}: beam lost mid-bench",
            case.label
        );
        rows = trace.times.len() as u64;
        best = best.min(dt);
    }
    LoopBenchRow {
        label: case.label,
        revolutions: rows,
        wall_s: best,
        revs_per_sec: rows as f64 / best,
    }
}

/// Run the full standard-case matrix (first case doubles as warmup: one
/// untimed run pages in code and settles the allocator and kernel cache).
pub fn run_loop_bench(revolutions: u64, runs: usize) -> Vec<LoopBenchRow> {
    let s = bench_scenario(revolutions);
    let cases = standard_cases();
    let _ = measure_case(&s, cases[0], 1);
    cases.iter().map(|&c| measure_case(&s, c, runs)).collect()
}

/// Throughput ratio between two measured cases (`num` over `den`).
pub fn speedup(rows: &[LoopBenchRow], num: &str, den: &str) -> f64 {
    let find = |label: &str| {
        rows.iter()
            .find(|r| r.label == label)
            .unwrap_or_else(|| panic!("no case {label}"))
            .revs_per_sec
    };
    find(num) / find(den)
}

/// Write `results/BENCH_loop.json` (repo-root `results/`, independent of
/// the working directory); returns the path written.
pub fn write_bench_json(
    revolutions: u64,
    runs: usize,
    rows: &[LoopBenchRow],
    speedup: f64,
    speedup_observed: f64,
    bound: f64,
) -> PathBuf {
    let dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"));
    std::fs::create_dir_all(&dir).unwrap();
    let mut cases = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            cases.push(',');
        }
        write!(
            cases,
            "{{\"label\":\"{}\",\"revolutions\":{},\"wall_s\":{},\"revs_per_sec\":{}}}",
            r.label, r.revolutions, r.wall_s, r.revs_per_sec
        )
        .unwrap();
    }
    let path = dir.join("BENCH_loop.json");
    std::fs::write(
        &path,
        format!(
            "{{\"bench\":\"loop_throughput\",\"revolutions\":{revolutions},\"runs\":{runs},\
             \"cases\":[{cases}],\
             \"speedup_plan_batched_vs_walk_per_turn\":{speedup},\
             \"speedup_plan_observed_vs_walk_per_turn\":{speedup_observed},\
             \"bound\":{bound}}}\n"
        ),
    )
    .unwrap();
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_have_unique_labels_and_cover_both_modes() {
        let cases = standard_cases();
        let mut labels: Vec<_> = cases.iter().map(|c| c.label).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), cases.len(), "labels are unique");
        assert!(cases
            .iter()
            .any(|c| c.kind == CaseKind::CgraPlan && !c.per_turn));
        assert!(cases
            .iter()
            .any(|c| c.kind == CaseKind::CgraWalk && c.per_turn));
        assert!(
            cases
                .iter()
                .any(|c| c.kind == CaseKind::CgraPlan && c.observed && !c.per_turn),
            "the observer-attached batched case must be in the matrix"
        );
    }

    #[test]
    fn speedup_reads_the_named_cases() {
        let rows = vec![
            LoopBenchRow {
                label: "a",
                revolutions: 10,
                wall_s: 1.0,
                revs_per_sec: 10.0,
            },
            LoopBenchRow {
                label: "b",
                revolutions: 10,
                wall_s: 2.0,
                revs_per_sec: 5.0,
            },
        ];
        assert!((speedup(&rows, "a", "b") - 2.0).abs() < 1e-12);
    }

    /// A tiny smoke run (debug build, so no timing claims): every case
    /// completes and records the same number of rows.
    #[test]
    fn all_cases_complete_and_agree_on_rows() {
        let rows = run_loop_bench(200, 1);
        assert_eq!(rows.len(), standard_cases().len());
        for r in &rows {
            assert_eq!(r.revolutions, rows[0].revolutions, "{}", r.label);
            assert!(r.revs_per_sec > 0.0);
        }
    }
}
