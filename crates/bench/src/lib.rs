//! # cil-bench — the experiment harness
//!
//! One binary per paper artifact (see DESIGN.md §13 and EXPERIMENTS.md):
//!
//! | binary                | artifact |
//! |-----------------------|----------|
//! | `fig1_forces`         | Fig. 1 — forces on a bunch from the gap voltage |
//! | `fig2_signals`        | Fig. 2 — input/output signals, h = 2 snapshot |
//! | `fig5_phase`          | Fig. 5 — phase traces, simulator vs real-beam stand-in |
//! | `table_schedule`      | §IV-B — schedule lengths & max revolution frequencies |
//! | `jitter_table`        | §I motivation — software vs CGRA timing jitter |
//! | `ablation_*`          | design-choice ablations A1–A6 |
//!
//! plus the criterion benches under `benches/` for throughput/real-time
//! claims. Binaries print aligned tables to stdout and drop CSV artifacts
//! into `results/`.

pub mod loop_bench;
pub mod reftrack_bench;
pub mod service_bench;

use std::fs;
use std::path::{Path, PathBuf};

/// Directory CSV artifacts are written to (created on demand).
pub fn results_dir() -> PathBuf {
    let p = PathBuf::from("results");
    let _ = fs::create_dir_all(&p);
    p
}

/// Write a CSV artifact; returns the path written.
pub fn write_csv(name: &str, contents: &str) -> PathBuf {
    let path = results_dir().join(name);
    fs::write(&path, contents).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    path
}

/// Accumulates a CSV artifact row by row: header written up front, every
/// row arity-checked against it, fields escaped per RFC 4180 (via
/// [`cil_core::campaign::csv_escape_field`]) only when they contain a
/// comma, quote or line break — plain numeric fields pass through
/// byte-identical to the hand-rolled `writeln!` they replace.
pub struct CsvWriter {
    columns: usize,
    buf: String,
}

impl CsvWriter {
    /// New writer with the given column headers (headers are escaped by
    /// the same rules as data fields).
    pub fn new(headers: &[&str]) -> Self {
        let mut w = Self {
            columns: headers.len(),
            buf: String::new(),
        };
        w.push_row(headers.iter().copied());
        w
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, fields: &[String]) -> &mut Self {
        assert_eq!(fields.len(), self.columns, "column count mismatch");
        self.push_row(fields.iter().map(String::as_str));
        self
    }

    fn push_row<'a>(&mut self, fields: impl Iterator<Item = &'a str>) {
        for (i, field) in fields.enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            if field.contains(['"', ',', '\n', '\r']) {
                self.buf
                    .push_str(&cil_core::campaign::csv_escape_field(field));
            } else {
                self.buf.push_str(field);
            }
        }
        self.buf.push('\n');
    }

    /// The CSV text accumulated so far.
    pub fn contents(&self) -> &str {
        &self.buf
    }

    /// Write to `results/<name>`; returns the path written.
    pub fn write(&self, name: &str) -> PathBuf {
        write_csv(name, &self.buf)
    }
}

/// A minimal fixed-width table printer for experiment output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i] + 2));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total.saturating_sub(2)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Parse a `--key value`-style flag from `std::env::args`.
pub fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

/// True if a bare `--flag` is present.
pub fn arg_flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

/// Format a paper-vs-measured comparison line.
pub fn compare_line(metric: &str, paper: &str, measured: &str) -> String {
    format!("  {metric:<42} paper: {paper:<18} ours: {measured}")
}

/// Check whether a path exists (test helper).
pub fn artifact_exists(name: &str) -> bool {
    Path::new("results").join(name).exists()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "long_header", "c"]);
        t.row(&["1".into(), "2".into(), "3".into()]);
        t.row(&["wide_cell".into(), "x".into(), "y".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long_header"));
        // Columns align: the second column starts at the same offset.
        let off0 = lines[0].find("long_header").unwrap();
        let off2 = lines[2].find('2').unwrap();
        let off3 = lines[3].find('x').unwrap();
        assert_eq!(off2, off0);
        assert_eq!(off3, off0);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_checks_arity() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1".into()]);
    }

    #[test]
    fn csv_writer_passes_plain_fields_through_unchanged() {
        let mut w = CsvWriter::new(&["bits", "fs_hz", "noise_ps"]);
        w.row(&["8".into(), "1279.63".into(), "4.120".into()]);
        w.row(&["14".into(), "1280.01".into(), "0.310".into()]);
        assert_eq!(
            w.contents(),
            "bits,fs_hz,noise_ps\n8,1279.63,4.120\n14,1280.01,0.310\n"
        );
    }

    #[test]
    fn csv_writer_escapes_only_when_needed() {
        let mut w = CsvWriter::new(&["name", "msg"]);
        w.row(&["plain".into(), "a,b \"quoted\"\nnext".into()]);
        assert_eq!(
            w.contents(),
            "name,msg\nplain,\"a,b \"\"quoted\"\" next\"\n"
        );
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn csv_writer_checks_arity() {
        let mut w = CsvWriter::new(&["a", "b"]);
        w.row(&["1".into()]);
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["prog", "--side", "sim", "--quick"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "--side").as_deref(), Some("sim"));
        assert_eq!(arg_value(&args, "--missing"), None);
        assert!(arg_flag(&args, "--quick"));
        assert!(!arg_flag(&args, "--verbose"));
    }
}
