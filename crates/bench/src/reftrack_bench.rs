//! Standing RefTrack kernel benchmark — the case matrix behind the wide-lane
//! sine kick.
//!
//! Two levels, one table:
//!
//! * **Tracker cases** (`<backend>_n<particles>`): raw `MultiParticleTracker`
//!   turns, sequential, one row per kernel backend (host libm reference,
//!   `Auto` runtime dispatch, and every polynomial backend the host exposes)
//!   at small / medium / large ensembles — particle-turns/s and
//!   ns/particle-turn. A threaded `Auto` row at the largest ensemble pins the
//!   intra-step parallel path.
//! * **Engine cases** (`engine_libm` / `engine_auto`): the full closed loop —
//!   `RefTrackEngine` through `LoopHarness` batched stepping, the same path
//!   `loop_bench`'s `reftrack_batched` case measures — so the kernel's effect
//!   on end-to-end revolutions/s is on record next to the raw numbers.
//!
//! The `bench_reftrack` binary prints the table and writes
//! `results/BENCH_reftrack.json`; the release-only `reftrack_guard` test pins
//! the polynomial kernel at ≥ [`KERNEL_BOUND`]x host libm in the same
//! process, the box-independent form of the "3x the recorded
//! `reftrack_batched` baseline" acceptance bar.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use cil_core::harness::LoopHarness;
use cil_core::scenario::MdeScenario;
use cil_physics::distribution::BunchSpec;
use cil_physics::machine::{MachineParams, OperatingPoint};
use cil_physics::synchrotron::SynchrotronCalc;
use cil_physics::IonSpecies;
use cil_reftrack::ensemble::Ensemble;
use cil_reftrack::kernel::KernelBackend;
use cil_reftrack::tracker::{MultiParticleTracker, TrackerConfig};

use crate::loop_bench::{bench_scenario, REFTRACK_PARTICLES};

/// Release guard bound: the polynomial kernel (best measured backend at the
/// largest ensemble — see [`guard_ratios`]) must beat the host-libm backend
/// by at least this factor on the kernel-dominated large-ensemble case.
pub const KERNEL_BOUND: f64 = 3.0;

/// Release guard bound for the full closed loop: the batched `RefTrackEngine`
/// on the `Auto` backend vs the same engine pinned to libm. Conservative —
/// harness bookkeeping dilutes the raw kernel ratio at the standing 256
/// macro-particle case.
pub const ENGINE_BOUND: f64 = 1.5;

/// Ensemble sizes the tracker-level matrix covers.
pub const PARTICLE_SIZES: [usize; 3] = [256, 4_096, 32_768];

/// Worker threads in the threaded large-ensemble case.
pub const PAR_THREADS: usize = 8;

/// Per-case measurement budget, in particle-turns: turn counts are scaled so
/// every tracker case does the same amount of kick work.
const PARTICLE_TURNS_PER_CASE: u64 = 2_000_000;

/// The Nov-24 MDE operating point (N7+ at 800 kHz, fs = 1.28 kHz) — the same
/// point the criterion `reftrack` bench and the closed-loop bench run.
pub fn bench_op() -> OperatingPoint {
    let m = MachineParams::sis18();
    let ion = IonSpecies::n14_7plus();
    let v = SynchrotronCalc::new(m, ion)
        .voltage_for_fs(800e3, 1.28e3)
        .expect("bench operating point is below transition");
    OperatingPoint::from_revolution_frequency(m, ion, 800e3, v)
}

/// One configuration of the kernel case matrix.
#[derive(Debug, Clone)]
pub struct ReftrackCase {
    /// Stable case id (keys the JSON artifact).
    pub label: String,
    /// Kernel backend; `None` marks a closed-loop engine case (which always
    /// compares `Auto` vs libm via its own pair of rows).
    pub backend: KernelBackend,
    /// Macro particles.
    pub particles: usize,
    /// Worker threads (1 = sequential path).
    pub threads: usize,
    /// `true` for the `engine_*` closed-loop cases.
    pub engine: bool,
}

/// The full standing matrix: every backend × every ensemble size
/// (sequential), one threaded `Auto` row at the largest ensemble, and the
/// two closed-loop engine rows.
pub fn standard_cases() -> Vec<ReftrackCase> {
    let mut cases = Vec::new();
    for &n in &PARTICLE_SIZES {
        let mut backends = vec![KernelBackend::Libm, KernelBackend::Auto];
        backends.extend(KernelBackend::poly_available());
        for backend in backends {
            cases.push(ReftrackCase {
                label: format!("{}_n{n}", backend.label()),
                backend,
                particles: n,
                threads: 1,
                engine: false,
            });
        }
    }
    let n = *PARTICLE_SIZES.last().unwrap();
    cases.push(ReftrackCase {
        label: format!("auto_t{PAR_THREADS}_n{n}"),
        backend: KernelBackend::Auto,
        particles: n,
        threads: PAR_THREADS,
        engine: false,
    });
    for (label, backend) in [
        ("engine_libm", KernelBackend::Libm),
        ("engine_auto", KernelBackend::Auto),
    ] {
        cases.push(ReftrackCase {
            label: label.to_string(),
            backend,
            particles: REFTRACK_PARTICLES,
            threads: 1,
            engine: true,
        });
    }
    cases
}

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct ReftrackBenchRow {
    /// Stable case id.
    pub label: String,
    /// Macro particles tracked.
    pub particles: usize,
    /// Worker threads.
    pub threads: usize,
    /// Turns per run (tracker cases) or harness revolutions (engine cases).
    pub turns: u64,
    /// Best-of-runs wall clock, seconds.
    pub wall_s: f64,
    /// `particles * turns / wall_s`.
    pub particle_turns_per_sec: f64,
    /// `1e9 * wall_s / (particles * turns)`.
    pub ns_per_particle_turn: f64,
}

fn row(case: &ReftrackCase, turns: u64, wall_s: f64) -> ReftrackBenchRow {
    let pt = case.particles as f64 * turns as f64;
    ReftrackBenchRow {
        label: case.label.clone(),
        particles: case.particles,
        threads: case.threads,
        turns,
        wall_s,
        particle_turns_per_sec: pt / wall_s,
        ns_per_particle_turn: 1e9 * wall_s / pt,
    }
}

fn measure_tracker_once(
    op: &OperatingPoint,
    ensembles: &[(usize, Ensemble)],
    case: &ReftrackCase,
) -> (u64, f64) {
    let ensemble = &ensembles
        .iter()
        .find(|(n, _)| *n == case.particles)
        .expect("ensemble pre-built for every matrix size")
        .1;
    let turns = (PARTICLE_TURNS_PER_CASE / case.particles as u64).max(1);
    let mut tr = MultiParticleTracker::new(
        *op,
        ensemble.clone(),
        TrackerConfig {
            threads: case.threads,
            min_chunk: if case.threads > 1 { 4096 } else { 1 << 30 },
            backend: case.backend,
        },
    );
    let t0 = Instant::now();
    for _ in 0..turns {
        tr.step(0.0);
    }
    std::hint::black_box(tr.ensemble.dt[0]);
    (turns, t0.elapsed().as_secs_f64())
}

fn measure_engine_once(s: &MdeScenario, case: &ReftrackCase) -> (u64, f64) {
    let mut engine =
        cil_core::engine::RefTrackEngine::from_scenario(s, case.particles, 0x5EED, 15e-9, 0.0)
            .expect("reftrack engine builds");
    engine.set_tracker_config(TrackerConfig {
        backend: case.backend,
        ..TrackerConfig::default()
    });
    let mut harness = LoopHarness::for_scenario(s, true);
    let t0 = Instant::now();
    let trace = harness.run(&mut engine, s.duration_s);
    let dt = t0.elapsed().as_secs_f64();
    assert!(
        trace.outcome.survived(),
        "{}: beam lost mid-bench",
        case.label
    );
    (trace.times.len() as u64, dt)
}

/// Run the full matrix. Measurement is interleaved: `runs` complete passes
/// over the whole case list, per-case best across passes — so a transient
/// slow window on a shared box (scheduler preemption, frequency dips)
/// degrades one pass of every case instead of every run of one case, and
/// the per-case best still comes from a clean pass. The first pass is
/// preceded by one untimed warmup run of the first case (pages in code,
/// settles the allocator).
pub fn run_reftrack_bench(engine_revolutions: u64, runs: usize) -> Vec<ReftrackBenchRow> {
    let op = bench_op();
    let ensembles: Vec<(usize, Ensemble)> = PARTICLE_SIZES
        .iter()
        .map(|&n| {
            (
                n,
                Ensemble::matched(&BunchSpec::gaussian(15e-9), n, &op, 7)
                    .expect("matched ensemble at the bench operating point"),
            )
        })
        .collect();
    let s = bench_scenario(engine_revolutions);
    let cases = standard_cases();
    let _ = measure_tracker_once(&op, &ensembles, &cases[0]);
    let mut best: Vec<(u64, f64)> = vec![(0, f64::INFINITY); cases.len()];
    for _ in 0..runs.max(1) {
        for (case, slot) in cases.iter().zip(best.iter_mut()) {
            let (turns, wall_s) = if case.engine {
                measure_engine_once(&s, case)
            } else {
                measure_tracker_once(&op, &ensembles, case)
            };
            slot.0 = turns;
            slot.1 = slot.1.min(wall_s);
        }
    }
    cases
        .iter()
        .zip(best)
        .map(|(c, (turns, wall_s))| row(c, turns, wall_s))
        .collect()
}

/// Throughput ratio between two measured cases (`num` over `den`).
pub fn speedup(rows: &[ReftrackBenchRow], num: &str, den: &str) -> f64 {
    let find = |label: &str| {
        rows.iter()
            .find(|r| r.label == label)
            .unwrap_or_else(|| panic!("no case {label}"))
            .particle_turns_per_sec
    };
    find(num) / find(den)
}

/// The two guard ratios: (best polynomial backend vs libm on the
/// kernel-dominated large sequential cases, `engine_auto` vs `engine_libm`
/// on the closed loop). The kernel ratio takes the best measured polynomial
/// row — `Auto` resolves to the widest backend, so its row and the explicit
/// widest-backend row measure the same code; using the max keeps one noisy
/// sample on a shared box from masking the kernel's real speedup.
pub fn guard_ratios(rows: &[ReftrackBenchRow]) -> (f64, f64) {
    let n = *PARTICLE_SIZES.last().unwrap();
    let suffix = format!("_n{n}");
    let libm = format!("libm{suffix}");
    let best_poly = rows
        .iter()
        .filter(|r| r.label.ends_with(&suffix) && r.label != libm && r.threads == 1)
        .map(|r| r.particle_turns_per_sec)
        .fold(0.0f64, f64::max);
    let libm_rate = rows
        .iter()
        .find(|r| r.label == libm)
        .unwrap_or_else(|| panic!("no case {libm}"))
        .particle_turns_per_sec;
    (
        best_poly / libm_rate,
        speedup(rows, "engine_auto", "engine_libm"),
    )
}

/// Write `results/BENCH_reftrack.json` (repo-root `results/`, independent of
/// the working directory); returns the path written.
pub fn write_bench_json(runs: usize, rows: &[ReftrackBenchRow]) -> PathBuf {
    let dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"));
    std::fs::create_dir_all(&dir).unwrap();
    let mut cases = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            cases.push(',');
        }
        write!(
            cases,
            "{{\"label\":\"{}\",\"particles\":{},\"threads\":{},\"turns\":{},\"wall_s\":{},\
             \"particle_turns_per_sec\":{},\"ns_per_particle_turn\":{}}}",
            r.label,
            r.particles,
            r.threads,
            r.turns,
            r.wall_s,
            r.particle_turns_per_sec,
            r.ns_per_particle_turn
        )
        .unwrap();
    }
    let (kernel_ratio, engine_ratio) = guard_ratios(rows);
    let path = dir.join("BENCH_reftrack.json");
    std::fs::write(
        &path,
        format!(
            "{{\"bench\":\"reftrack_kernel\",\"runs\":{runs},\
             \"cases\":[{cases}],\
             \"speedup_poly_vs_libm_large\":{kernel_ratio},\
             \"speedup_engine_auto_vs_libm\":{engine_ratio},\
             \"kernel_bound\":{KERNEL_BOUND},\"engine_bound\":{ENGINE_BOUND}}}\n"
        ),
    )
    .unwrap();
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_backends_sizes_and_both_guard_pairs() {
        let cases = standard_cases();
        let mut labels: Vec<_> = cases.iter().map(|c| c.label.clone()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), cases.len(), "labels are unique");
        let n = *PARTICLE_SIZES.last().unwrap();
        for want in [
            format!("libm_n{n}"),
            format!("auto_n{n}"),
            format!("auto_t{PAR_THREADS}_n{n}"),
            "engine_libm".to_string(),
            "engine_auto".to_string(),
        ] {
            assert!(
                cases.iter().any(|c| c.label == want),
                "matrix must contain {want}"
            );
        }
        // Every ensemble size gets both the libm reference and Auto dispatch.
        for &n in &PARTICLE_SIZES {
            assert!(cases.iter().any(|c| c.label == format!("libm_n{n}")));
            assert!(cases.iter().any(|c| c.label == format!("auto_n{n}")));
        }
    }

    /// Tiny smoke run (debug build, so no timing claims): every case
    /// completes, ratios are finite and positive.
    #[test]
    fn all_cases_complete() {
        let rows = run_reftrack_bench(50, 1);
        assert_eq!(rows.len(), standard_cases().len());
        for r in &rows {
            assert!(r.particle_turns_per_sec > 0.0, "{}", r.label);
            assert!(r.ns_per_particle_turn > 0.0, "{}", r.label);
        }
        let (k, e) = guard_ratios(&rows);
        assert!(k.is_finite() && k > 0.0);
        assert!(e.is_finite() && e > 0.0);
    }
}
