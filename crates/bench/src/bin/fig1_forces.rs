//! Fig. 1 — "Sample forces that influence a bunch".
//!
//! Regenerates the data behind the paper's intro figure: the sinusoidal gap
//! voltage over one RF period, a Gaussian bunch profile around the stable
//! zero crossing, and the per-passage energy kick experienced by early /
//! on-time / late particles (late → higher voltage → accelerated; early →
//! lower voltage → decelerated, Section I).

use cil_bench::{compare_line, write_csv, Table};
use cil_physics::constants::TWO_PI;
use cil_physics::machine::{MachineParams, OperatingPoint};
use cil_physics::synchrotron::SynchrotronCalc;
use cil_physics::tracking::TwoParticleMap;
use cil_physics::IonSpecies;
use std::fmt::Write as _;

fn main() {
    let machine = MachineParams::sis18();
    let ion = IonSpecies::n14_7plus();
    let v_hat = SynchrotronCalc::new(machine, ion)
        .voltage_for_fs(800e3, 1.28e3)
        .unwrap();
    let op = OperatingPoint::from_revolution_frequency(machine, ion, 800e3, v_hat);
    let f_rf = op.f_rf();
    let t_rf = 1.0 / f_rf;

    // Curve data: gap voltage + bunch profile over ±half an RF period.
    let mut csv = String::from("dt_s,v_gap_volts,bunch_density\n");
    let points = 401;
    for i in 0..points {
        let dt = (i as f64 / (points - 1) as f64 - 0.5) * t_rf;
        let v = v_hat * (TWO_PI * f_rf * dt).sin();
        let x = dt / 20e-9;
        let density = (-0.5 * x * x).exp();
        writeln!(csv, "{dt:.6e},{v:.6e},{density:.6e}").unwrap();
    }
    let path = write_csv("fig1_forces.csv", &csv);

    // Energy kicks of representative particles, via the actual map.
    let mut table = Table::new(&[
        "particle",
        "dt [ns]",
        "V seen [V]",
        "dGamma per turn",
        "effect",
    ]);
    for (label, dt_ns) in [("early", -10.0), ("on time", 0.0), ("late", 10.0)] {
        let mut map = TwoParticleMap::at_operating_point(&op);
        map.particle.dt = dt_ns * 1e-9;
        let v_seen = v_hat * (TWO_PI * f_rf * map.particle.dt).sin();
        map.step_stationary(v_hat, 0.0);
        let effect = if map.particle.dgamma > 0.0 {
            "accelerated"
        } else if map.particle.dgamma < 0.0 {
            "slowed down"
        } else {
            "unchanged"
        };
        table.row(&[
            label.to_string(),
            format!("{dt_ns:+.1}"),
            format!("{v_seen:+.1}"),
            format!("{:+.3e}", map.particle.dgamma),
            effect.to_string(),
        ]);
    }

    println!("Fig. 1 — forces on a bunch (stationary bucket, SIS18, 14N7+)\n");
    table.print();
    println!();
    println!(
        "{}",
        compare_line("late particle (dt>0)", "accelerated", "accelerated")
    );
    println!(
        "{}",
        compare_line("early particle (dt<0)", "slowed down", "slowed down")
    );
    println!(
        "{}",
        compare_line(
            "gap voltage amplitude",
            "(set for fs=1.28 kHz)",
            &format!("{v_hat:.0} V")
        )
    );
    println!("\ncurve data -> {}", path.display());
}
