//! Inspect the CGRA artifacts for a beam-kernel configuration: the
//! generated C source, DFG statistics, the schedule Gantt chart, the
//! routing report and the context-memory footprint.
//!
//! `--bunches N` (default 1), `--sequential` (default pipelined),
//! `--grid N` (N×N mesh, default 5), `--source` (dump the C source).

use cil_bench::{arg_flag, arg_value};
use cil_cgra::context::ContextMemories;
use cil_cgra::grid::GridConfig;
use cil_cgra::kernels::{build_beam_kernel, KernelParams};
use cil_cgra::report::{gantt, pe_stats, summary};
use cil_cgra::route::route;
use cil_cgra::sched::ListScheduler;
use cil_core::scenario::MdeScenario;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let bunches: usize =
        arg_value(&args, "--bunches").map_or(1, |v| v.parse().expect("bad --bunches"));
    let pipelined = !arg_flag(&args, "--sequential");
    let n: u16 = arg_value(&args, "--grid").map_or(5, |v| v.parse().expect("bad --grid"));

    let params: KernelParams = MdeScenario::nov24_2023().kernel_params().unwrap();
    let bk = build_beam_kernel(&params, bunches, pipelined);
    if arg_flag(&args, "--source") {
        println!("{}", bk.source);
    }

    let grid = GridConfig::mesh(n, n);
    let schedule = ListScheduler::new(grid).schedule(&bk.kernel.dfg);
    schedule.validate(&bk.kernel.dfg).expect("valid schedule");

    println!("== kernel ==");
    println!("bunches = {bunches}, pipelined = {pipelined}");
    for (op, count) in bk.kernel.dfg.op_histogram() {
        println!("  {op:<16} {count}");
    }
    println!("\n== schedule ==");
    println!("{}", summary(&bk.kernel.dfg, &schedule));
    println!(
        "max revolution frequency at 111 MHz: {:.3} MHz\n",
        schedule.max_revolution_frequency(111e6) / 1e6
    );
    println!("{}", gantt(&bk.kernel.dfg, &schedule, 120));

    println!("== PE occupancy ==");
    for st in pe_stats(&bk.kernel.dfg, &schedule) {
        if st.ops > 0 {
            println!(
                "  PE{:<3} {:>3} ops  {:>4.0}%",
                st.pe,
                st.ops,
                st.issue_occupancy * 100.0
            );
        }
    }

    let r = route(&bk.kernel.dfg, &schedule);
    println!("\n== routing ==");
    println!("  transfers needing hops : {}", r.routed_transfers);
    println!("  total hops             : {}", r.total_hops);
    println!("  links used             : {}", r.links_used);
    println!(
        "  max link occupancy     : {} (channel multiplicity needed)",
        r.max_link_occupancy
    );
    println!("  contended slots        : {}", r.contended_slots);

    let ctx = ContextMemories::from_schedule(&bk.kernel.dfg, &schedule);
    println!("\n== context memories ==");
    println!("  configured slots : {}", ctx.slot_count());
    println!(
        "  packed image     : {} bytes (the bitstream patch)",
        ctx.pack().len()
    );
}
