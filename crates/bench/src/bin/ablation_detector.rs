//! Ablation A8 — phase-measurement instrument: pulse-centroid timing vs
//! IQ demodulation.
//!
//! The paper's DSP "captures the phase difference between the beam signal
//! … and the reference signal" without specifying the method; the GSI
//! instrument of ref. [8] IQ-demodulates at the RF harmonic. Both are run
//! here on the *same* signal-level beam, comparing their noise floor
//! (driven by the 4 ns pulse-trigger grid) and their tracking of the
//! synchrotron oscillation.

use cil_bench::{write_csv, Table};
use cil_core::framework::SimulatorFramework;
use cil_core::scenario::MdeScenario;
use cil_core::signalgen::{PhaseJumpProgram, SignalBench};
use cil_dsp::iq::IqDemodulator;
use cil_dsp::phase_detector::PhaseDetector;
use std::fmt::Write as _;

struct Measured {
    fs_hz: f64,
    amp_deg: f64,
    noise_rms_deg: f64,
}

/// Unwrap a ±180°-wrapped phase series into a continuous one.
fn unwrap(trace: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(trace.len());
    let mut offset = 0.0;
    for (i, &x) in trace.iter().enumerate() {
        if i > 0 {
            let prev = trace[i - 1];
            if x - prev > 180.0 {
                offset -= 360.0;
            } else if x - prev < -180.0 {
                offset += 360.0;
            }
        }
        out.push(x + offset);
    }
    out
}

fn stats(trace: &[f64], f_rev: f64) -> Measured {
    let (f_norm, amp) = cil_dsp::spectrum::dominant_frequency(trace, 800.0 / f_rev, 2000.0 / f_rev);
    // Noise: residual after removing mean and the dominant tone.
    let mean = trace.iter().sum::<f64>() / trace.len() as f64;
    let tau = std::f64::consts::TAU * f_norm;
    let (a_fit, ph_fit) = {
        let (mut re, mut im) = (0.0, 0.0);
        for (i, &x) in trace.iter().enumerate() {
            re += (x - mean) * (tau * i as f64).cos();
            im -= (x - mean) * (tau * i as f64).sin();
        }
        let n = trace.len() as f64;
        (2.0 * (re * re + im * im).sqrt() / n, im.atan2(re))
    };
    let mut resid = 0.0;
    for (i, &x) in trace.iter().enumerate() {
        let model = mean + a_fit * (tau * i as f64 + ph_fit).cos();
        resid += (x - model) * (x - model);
    }
    Measured {
        fs_hz: f_norm * f_rev,
        amp_deg: amp,
        noise_rms_deg: (resid / trace.len() as f64).sqrt(),
    }
}

fn main() {
    let mut s = MdeScenario::nov24_2023();
    s.bunches = 1;
    s.pipelined = false;
    let f_rf = s.f_rev * f64::from(s.harmonic());
    let mut fw = SimulatorFramework::new(s.framework_config(), s.kernel_params().unwrap());
    let mut bench = SignalBench::new(
        250e6,
        s.f_rev,
        s.harmonic(),
        s.adc_amplitude,
        s.adc_amplitude,
        PhaseJumpProgram {
            amplitude_deg: 0.0,
            interval_s: 10.0,
            path_latency_s: 0.0,
        },
    );
    let period_samples = 250e6 / s.f_rev;
    let mut centroid = PhaseDetector::new(0.2, f64::from(s.harmonic()), period_samples);
    // The reference DDS is undisturbed and clock-locked, so the beam's
    // absolute IQ phase against the demodulator's internal LO (same clock)
    // is the beam-vs-reference phase up to a constant offset — exactly how
    // a clock-synchronous DSP measures it.
    let mut iq = IqDemodulator::new(f_rf, 250e6, 30e3);

    // Initialise, displace the bunch by 8 degrees, then measure 6 ms with
    // both instruments on the same streams.
    for _ in 0..(50e-6 * 250e6) as usize {
        let (r, g) = bench.tick();
        let out = fw.push_sample(r, g);
        centroid.push(r, out.beam);
        iq.push(out.beam);
    }
    fw.set_kernel_static("dt_0", 8.0 / 360.0 / f_rf);
    let mut trace_centroid = Vec::new();
    let mut trace_iq = Vec::new();
    let mut iq_decim = 0u32;
    for _ in 0..(6e-3 * 250e6) as usize {
        let (r, g) = bench.tick();
        let out = fw.push_sample(r, g);
        if let Some(m) = centroid.push(r, out.beam) {
            trace_centroid.push(m.phase_deg);
        }
        if let Some(d) = iq.push(out.beam) {
            // Decimate the continuous IQ output to the revolution rate.
            iq_decim += 1;
            if iq_decim as f64 >= period_samples {
                iq_decim = 0;
                trace_iq.push(d);
            }
        }
    }

    let mc = stats(&unwrap(&trace_centroid), s.f_rev);
    let mi = stats(&unwrap(&trace_iq), s.f_rev);
    println!("Ablation A8 — centroid vs IQ phase measurement (signal level,");
    println!("8 deg displaced bunch, 6 ms, both instruments on the same beam)\n");
    let mut t = Table::new(&[
        "instrument",
        "fs [Hz]",
        "oscillation amp [deg]",
        "noise RMS [deg]",
    ]);
    let mut csv = String::from("instrument,fs_hz,amp_deg,noise_rms_deg\n");
    for (name, m) in [("pulse centroid", &mc), ("IQ demodulation", &mi)] {
        t.row(&[
            name.into(),
            format!("{:.1}", m.fs_hz),
            format!("{:.2}", m.amp_deg),
            format!("{:.3}", m.noise_rms_deg),
        ]);
        writeln!(
            csv,
            "{name},{:.2},{:.3},{:.4}",
            m.fs_hz, m.amp_deg, m.noise_rms_deg
        )
        .unwrap();
    }
    t.print();
    println!("\nreading: both instruments agree on fs and amplitude; the IQ");
    println!("meter averages over many RF cycles and is insensitive to the");
    println!("4 ns trigger grid, so its noise floor is lower — the reason the");
    println!("production GSI DSP demodulates instead of timing pulse edges.");
    let path = write_csv("ablation_detector.csv", &csv);
    println!("\ndata -> {}", path.display());
}
