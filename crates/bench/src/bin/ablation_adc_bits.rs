//! Ablation A3 — converter resolution.
//!
//! The FMC151 provides a 14-bit ADC (Section III-A). Sweeps the ADC
//! resolution from 8 to 16 bits and reports the end-to-end effect on the
//! simulated synchrotron frequency and on the phase-trace noise floor of a
//! quiescent (undisplaced) beam.

use cil_bench::{CsvWriter, Table};
use cil_core::framework::SimulatorFramework;
use cil_core::scenario::MdeScenario;
use cil_core::signalgen::{PhaseJumpProgram, SignalBench};

fn run(bits: u32) -> (f64, f64) {
    let mut s = MdeScenario::nov24_2023();
    s.bunches = 1;
    s.pipelined = false;
    let mut cfg = s.framework_config();
    cfg.adc.bits = bits;
    let mut fw = SimulatorFramework::new(cfg, s.kernel_params().unwrap());
    let mut bench = SignalBench::new(
        250e6,
        s.f_rev,
        s.harmonic(),
        s.adc_amplitude,
        s.adc_amplitude,
        PhaseJumpProgram {
            amplitude_deg: 0.0,
            interval_s: 10.0,
            path_latency_s: 0.0,
        },
    );
    // Quiescent noise floor over 2 ms.
    for _ in 0..(50e-6 * 250e6) as usize {
        let (r, g) = bench.tick();
        fw.push_sample(r, g);
    }
    fw.records.clear();
    for _ in 0..(2e-3 * 250e6) as usize {
        let (r, g) = bench.tick();
        fw.push_sample(r, g);
    }
    let quiesc: Vec<f64> = fw.records.iter().map(|r| r.dt[0]).collect();
    let mean = quiesc.iter().sum::<f64>() / quiesc.len() as f64;
    let noise_rms =
        (quiesc.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / quiesc.len() as f64).sqrt();

    // fs with a displaced bunch over 5 ms.
    let dt0 = 8.0 / 360.0 / (s.f_rev * 4.0);
    fw.set_kernel_static("dt_0", dt0);
    fw.records.clear();
    for _ in 0..(5e-3 * 250e6) as usize {
        let (r, g) = bench.tick();
        fw.push_sample(r, g);
    }
    let trace: Vec<f64> = fw.records.iter().map(|r| r.dt[0]).collect();
    let (f_norm, _) =
        cil_dsp::spectrum::dominant_frequency(&trace, 800.0 / s.f_rev, 2000.0 / s.f_rev);
    (f_norm * s.f_rev, noise_rms)
}

fn main() {
    println!("Ablation A3 — ADC resolution sweep (signal-level loop)\n");
    let mut t = Table::new(&[
        "ADC bits",
        "measured fs [Hz]",
        "fs error",
        "quiescent dt noise [ps RMS]",
    ]);
    let mut csv = CsvWriter::new(&["bits", "fs_hz", "noise_ps"]);
    for bits in [8u32, 10, 12, 14, 16] {
        let (fs, noise) = run(bits);
        let label = if bits == 14 {
            "14 (FMC151)".to_string()
        } else {
            bits.to_string()
        };
        t.row(&[
            label,
            format!("{fs:.1}"),
            format!("{:+.2}%", (fs - 1280.0) / 1280.0 * 100.0),
            format!("{:.2}", noise * 1e12),
        ]);
        csv.row(&[
            bits.to_string(),
            format!("{fs:.2}"),
            format!("{:.3}", noise * 1e12),
        ]);
    }
    t.print();
    println!("\nconclusion: the oscillation frequency is robust to resolution;");
    println!("quantisation mainly sets the quiescent noise floor of the model");
    println!("state, which 14 bits keeps in the low-picosecond range.");
    let path = csv.write("ablation_adc_bits.csv");
    println!("\ndata -> {}", path.display());
}
