//! Ablation A10 — closed-loop robustness to converter input noise.
//!
//! The FMC151 front-end is clean, but the analogue plant of an accelerator
//! hall is not. Sweeps additive ADC input noise (as a fraction of the 0.5 V
//! signal amplitude) and scores the full signal-level loop on one 8° jump:
//! does the loop still see the oscillation, and does it still damp it?

use cil_bench::{CsvWriter, Table};
use cil_core::hil::SignalLevelLoop;
use cil_core::scenario::MdeScenario;
use cil_core::trace::score_jump_response;

struct Outcome {
    first_peak_ratio: f64,
    residual_ratio: f64,
    baseline_noise_deg: f64,
}

fn run(noise_fraction: f64) -> Outcome {
    let mut s = MdeScenario::nov24_2023();
    s.bunches = 1;
    s.jumps.interval_s = 16e-3;
    s.adc_noise_rms = noise_fraction * s.adc_amplitude;
    let result = SignalLevelLoop::new(s).run(0.045, true).unwrap();
    let t_jump = result.jump_times[0];
    let display = result.display_trace();
    let r = score_jump_response(&display, t_jump, t_jump + 15e-3, 8.0);
    // Quiescent noise: trace spread shortly before the jump (after the
    // start-up transients have died down).
    let pre = display.window(t_jump - 6e-3, t_jump - 1e-4);
    Outcome {
        first_peak_ratio: r.first_peak_ratio,
        residual_ratio: r.residual_ratio,
        baseline_noise_deg: pre.peak_to_peak() / 2.0,
    }
}

fn main() {
    println!("Ablation A10 — ADC input noise vs closed-loop jump response");
    println!("(signal level, 8 deg jump, 24 ms, noise relative to 0.5 V amplitude)\n");
    let mut t = Table::new(&[
        "noise [% of amplitude]",
        "baseline noise [deg]",
        "first peak / jump",
        "residual",
    ]);
    let mut csv = CsvWriter::new(&[
        "noise_fraction",
        "baseline_noise_deg",
        "first_peak",
        "residual",
    ]);
    for noise in [0.0, 0.002, 0.005, 0.01, 0.02] {
        let o = run(noise);
        t.row(&[
            format!("{:.1}", noise * 100.0),
            format!("{:.2}", o.baseline_noise_deg),
            format!("{:.2}", o.first_peak_ratio),
            format!("{:.2}", o.residual_ratio),
        ]);
        csv.row(&[
            noise.to_string(),
            format!("{:.3}", o.baseline_noise_deg),
            format!("{:.3}", o.first_peak_ratio),
            format!("{:.3}", o.residual_ratio),
        ]);
    }
    t.print();
    println!("\nreading: unlike a real ring — where front-end noise only blurs");
    println!("the *measurement* — HIL input noise enters the simulated physics:");
    println!("the kernel integrates noisy gap voltages, so ADC noise acts like");
    println!("RF noise heating the simulated beam. The 2x jump response stays");
    println!("clean up to ~1% input noise and is swamped by ~2%. The residual");
    println!("floor (~0.8 even at zero noise) is the pulse-trigger grid");
    println!("quantisation recirculated by the pipelined kernel — the rig's");
    println!("own noise floor, visible as the fuzz in the paper's Fig. 5a.");
    let path = csv.write("ablation_noise.csv");
    println!("\ndata -> {}", path.display());
}
