//! Ablation A5 — controller parameter sweep.
//!
//! The evaluation uses "f_pass = 1.4 kHz, gain = −5 and recursion factor
//! 0.99, which are the optimal parameters according to [8]". Sweeps gain
//! and pass frequency around that point (turn-level loop, one 8° jump) and
//! reports first-peak ratio, residual and damping time — showing the
//! chosen point is indeed a good one. The variants run in parallel through
//! [`cil_core::sweep::parallel_sweep_with_merge`]; results come back in
//! input order, so the table stays deterministic. Each worker carries a
//! private metrics registry (merged lock-free into a root registry at
//! join — pass `--telemetry` to print the merged snapshot) plus an
//! [`EngineArena`]: the sweep varies only controller settings, so after a
//! worker's first point every subsequent point leases the same engine
//! rewound to its initial state instead of rebuilding it.

use cil_bench::{write_csv, Table};
use cil_core::hil::{EngineKind, TurnLevelLoop};
use cil_core::scenario::MdeScenario;
use cil_core::sweep::{parallel_sweep_with_merge, EngineArena};
use cil_core::telemetry::TelemetryRegistry;
use cil_core::trace::score_jump_response;
use std::fmt::Write as _;

#[derive(Clone, Copy)]
struct Point {
    gain: f64,
    f_pass: f64,
    recursion: f64,
    paper: bool,
}

fn run(reg: &TelemetryRegistry, arena: &mut EngineArena, p: &Point) -> (f64, f64, Option<f64>) {
    let mut s = MdeScenario::nov24_2023();
    s.duration_s = 0.1;
    s.bunches = 1;
    s.controller.gain = p.gain;
    s.controller.f_pass = p.f_pass;
    s.controller.recursion = p.recursion;
    let engine = arena.engine(&s, EngineKind::Map).unwrap();
    let result = TurnLevelLoop::new(s.clone(), EngineKind::Map)
        .with_telemetry(reg)
        .run_on(engine, true)
        .unwrap();
    let t_jump = result.jump_times[0];
    let r = score_jump_response(
        &result.phase_deg,
        t_jump,
        t_jump + 0.045,
        s.jumps.amplitude_deg,
    );
    (r.first_peak_ratio, r.residual_ratio, r.damping_time_s)
}

fn main() {
    let telemetry = std::env::args().any(|a| a == "--telemetry");
    println!("Ablation A5 — beam-phase controller parameter sweep");
    println!("(turn-level loop, 8 deg jump, 45 ms scoring window)\n");

    let mut points = Vec::new();
    // Gain sweep at the paper's filter settings.
    for gain in [-1.0, -2.0, -5.0, -8.0, -12.0, 2.0] {
        points.push(Point {
            gain,
            f_pass: 1.4e3,
            recursion: 0.99,
            paper: gain == -5.0,
        });
    }
    // Pass-frequency sweep at the paper's gain.
    for f_pass in [0.7e3f64, 2.8e3, 5.6e3] {
        points.push(Point {
            gain: -5.0,
            f_pass,
            recursion: 0.99,
            paper: false,
        });
    }
    // Recursion-factor sweep.
    for recursion in [0.9, 0.999] {
        points.push(Point {
            gain: -5.0,
            f_pass: 1.4e3,
            recursion,
            paper: false,
        });
    }

    let threads = std::thread::available_parallelism().map_or(1, |v| v.get());
    let registry = TelemetryRegistry::new();
    let results = parallel_sweep_with_merge(
        &points,
        threads,
        || (TelemetryRegistry::new(), EngineArena::new()),
        |(reg, arena), p| run(reg, arena, p),
        |(reg, arena)| {
            arena.sample_telemetry(&reg);
            registry.absorb(&reg);
        },
    );

    let mut t = Table::new(&[
        "gain",
        "f_pass [kHz]",
        "recursion",
        "first peak / jump",
        "residual",
        "damping tau [ms]",
    ]);
    let mut csv = String::from("gain,f_pass,recursion,first_peak_ratio,residual,tau_ms\n");
    for (p, (fp, res, tau)) in points.iter().zip(results) {
        let mark = if p.paper { " (paper)" } else { "" };
        let tau_s = tau.map_or("-".to_string(), |t| format!("{:.1}", t * 1e3));
        t.row(&[
            format!("{}{mark}", p.gain),
            format!("{:.1}", p.f_pass / 1e3),
            format!("{}", p.recursion),
            format!("{fp:.2}"),
            format!("{res:.3}"),
            tau_s.clone(),
        ]);
        writeln!(
            csv,
            "{},{},{},{fp:.3},{res:.4},{tau_s}",
            p.gain, p.f_pass, p.recursion
        )
        .unwrap();
    }
    t.print();
    println!("\nreading: negative gain damps (positive rings/unstable); the");
    println!("paper's point sits on the flat optimum — more gain buys little");
    println!("and risks saturation, lower f_pass slows the loop response.");
    let path = write_csv("ablation_controller.csv", &csv);
    println!("\ndata -> {}", path.display());

    if telemetry {
        println!("\n--- telemetry (merged across sweep workers) ---");
        print!("{}", registry.snapshot().to_prometheus());
    }
}
