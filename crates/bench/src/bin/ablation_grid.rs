//! Ablation A4 — CGRA grid size and interconnect topology.
//!
//! "The framework design … allow[s] an arbitrary number of PEs (e.g. 3x3 or
//! 5x5) and any interconnect structure" (Section III-C). Schedules the
//! 8-bunch pipelined kernel on grids from 2×2 to 6×6 and all three
//! interconnect topologies, reporting ticks, max revolution frequency and
//! PE utilisation.

use cil_bench::{write_csv, Table};
use cil_cgra::grid::{GridConfig, Topology};
use cil_cgra::kernels::{build_beam_kernel, KernelParams};
use cil_cgra::sched::ListScheduler;
use cil_core::scenario::MdeScenario;
use std::fmt::Write as _;

fn main() {
    let params: KernelParams = MdeScenario::nov24_2023().kernel_params().unwrap();
    let kernel = build_beam_kernel(&params, 8, true);
    let (_, critical_path) = kernel.kernel.dfg.critical_path();
    let f_clk = 111e6;

    println!("Ablation A4 — grid/topology sweep (8-bunch pipelined kernel)");
    println!(
        "kernel: {} DFG nodes, critical path {} ticks (lower bound)\n",
        kernel.kernel.dfg.len(),
        critical_path
    );

    let mut t = Table::new(&["grid", "topology", "ticks", "f_max [MHz]", "PE utilisation"]);
    let mut csv = String::from("rows,cols,topology,ticks,fmax_mhz,utilisation\n");
    for size in 2u16..=6 {
        for topo in [Topology::Mesh, Topology::MeshDiagonal, Topology::Torus] {
            let grid = GridConfig {
                topology: topo,
                ..GridConfig::mesh(size, size)
            };
            let schedule = ListScheduler::new(grid).schedule(&kernel.kernel.dfg);
            schedule
                .validate(&kernel.kernel.dfg)
                .expect("valid schedule");
            t.row(&[
                format!("{size}x{size}"),
                format!("{topo:?}"),
                schedule.makespan.to_string(),
                format!("{:.3}", schedule.max_revolution_frequency(f_clk) / 1e6),
                format!("{:.0}%", schedule.utilisation() * 100.0),
            ]);
            writeln!(
                csv,
                "{size},{size},{topo:?},{},{:.4},{:.3}",
                schedule.makespan,
                schedule.max_revolution_frequency(f_clk) / 1e6,
                schedule.utilisation()
            )
            .unwrap();
        }
    }
    t.print();
    println!("\nreading: the beam kernel is latency-bound, not issue-bound —");
    println!("even a 2x2 grid lands within ~10% of the critical-path lower");
    println!("bound, and beyond 3x3 extra PEs only lower utilisation. That");
    println!("matches the paper's observation that pipelining (attacking the");
    println!("critical path), not more PEs, was the lever worth pulling.");
    let path = write_csv("ablation_grid.csv", &csv);
    println!("\ndata -> {}", path.display());
}
