//! Ablation A1 — the Section IV-B linear interpolation.
//!
//! Two views: (a) raw reconstruction error of the interpolation policies on
//! the two input sines; (b) end-to-end effect on the simulated synchrotron
//! frequency and phase-trace noise when the kernel's second buffer read is
//! removed (nearest-sample addressing instead of two reads + lerp).

use cil_bench::{CsvWriter, Table};
use cil_core::framework::SimulatorFramework;
use cil_core::scenario::MdeScenario;
use cil_core::signalgen::{PhaseJumpProgram, SignalBench};
use cil_dsp::interp::Interpolation;

fn end_to_end(interpolate: bool) -> (f64, f64) {
    let mut s = MdeScenario::nov24_2023();
    s.bunches = 1;
    s.pipelined = false;
    let mut cfg = s.framework_config();
    cfg.interpolate = interpolate;
    let mut fw = SimulatorFramework::new(cfg, s.kernel_params().unwrap());
    let mut bench = SignalBench::new(
        250e6,
        s.f_rev,
        s.harmonic(),
        s.adc_amplitude,
        s.adc_amplitude,
        PhaseJumpProgram {
            amplitude_deg: 0.0,
            interval_s: 10.0,
            path_latency_s: 0.0,
        },
    );
    for _ in 0..(50e-6 * 250e6) as usize {
        let (r, g) = bench.tick();
        fw.push_sample(r, g);
    }
    let dt0 = 8.0 / 360.0 / (s.f_rev * f64::from(s.harmonic()));
    fw.set_kernel_static("dt_0", dt0);
    fw.records.clear();
    for _ in 0..(5e-3 * 250e6) as usize {
        let (r, g) = bench.tick();
        fw.push_sample(r, g);
    }
    let trace: Vec<f64> = fw.records.iter().map(|r| r.dt[0]).collect();
    let (f_norm, amp) =
        cil_dsp::spectrum::dominant_frequency(&trace, 800.0 / s.f_rev, 2000.0 / s.f_rev);
    (f_norm * s.f_rev, amp)
}

fn main() {
    println!("Ablation A1 — linear interpolation of the buffer reads\n");

    // (a) Raw reconstruction error per policy and signal.
    let mut t = Table::new(&[
        "policy",
        "ref sine (312.5 smp/period)",
        "gap sine (78.1 smp/period)",
    ]);
    let mut csv = CsvWriter::new(&["policy", "err_ref", "err_gap"]);
    for (name, p) in [
        ("nearest", Interpolation::NearestNeighbor),
        ("linear (paper)", Interpolation::Linear),
        ("catmull-rom", Interpolation::CatmullRom),
    ] {
        let e_ref = p.sine_error(312.5);
        let e_gap = p.sine_error(78.125);
        t.row(&[name.into(), format!("{e_ref:.2e}"), format!("{e_gap:.2e}")]);
        csv.row(&[name.into(), format!("{e_ref:.3e}"), format!("{e_gap:.3e}")]);
    }
    t.print();

    // (b) End-to-end.
    println!("\nend-to-end (signal-level, 5 ms, 8 deg displaced bunch):\n");
    let (fs_with, amp_with) = end_to_end(true);
    let (fs_without, amp_without) = end_to_end(false);
    let mut t2 = Table::new(&[
        "kernel",
        "measured fs [Hz]",
        "fs error vs 1280",
        "amplitude [ns]",
    ]);
    for (name, fs, amp) in [
        ("two reads + lerp (paper)", fs_with, amp_with),
        ("single nearest read", fs_without, amp_without),
    ] {
        t2.row(&[
            name.into(),
            format!("{fs:.1}"),
            format!("{:+.2}%", (fs - 1280.0) / 1280.0 * 100.0),
            format!("{:.2}", amp * 1e9),
        ]);
    }
    t2.print();
    println!("\nconclusion: interpolation keeps the sampled-voltage error");
    println!("orders of magnitude below the ADC floor; without it the gap");
    println!("sampling quantises to 4 ns and the loop picks up extra noise.");
    let path = csv.write("ablation_interp.csv");
    println!("\ndata -> {}", path.display());
}
