//! Ablation A9 — compiler middle-end.
//!
//! The paper compiles the C model straight into SCAR and schedules it. How
//! much headroom does a classic optimiser (constant folding + CSE + DCE)
//! buy on the same kernels, in nodes and in schedule ticks (i.e. maximum
//! real-time revolution frequency)?

use cil_bench::{write_csv, Table};
use cil_cgra::grid::GridConfig;
use cil_cgra::kernels::{build_beam_kernel, KernelParams};
use cil_cgra::optimize::optimize;
use cil_cgra::sched::ListScheduler;
use cil_core::scenario::MdeScenario;
use std::fmt::Write as _;

fn main() {
    let params: KernelParams = MdeScenario::nov24_2023().kernel_params().unwrap();
    let sched = ListScheduler::new(GridConfig::mesh_5x5());
    let f_clk = 111e6;

    println!("Ablation A9 — DFG optimiser (fold + CSE + DCE) on the beam kernels\n");
    let mut t = Table::new(&[
        "kernel",
        "nodes",
        "nodes (opt)",
        "ticks",
        "ticks (opt)",
        "f_max MHz",
        "f_max MHz (opt)",
    ]);
    let mut csv = String::from("kernel,nodes,nodes_opt,ticks,ticks_opt,fmax_mhz,fmax_opt_mhz\n");
    for (bunches, pipelined) in [(1usize, true), (4, true), (8, true), (8, false)] {
        let bk = build_beam_kernel(&params, bunches, pipelined);
        let (opt, stats) = optimize(&bk.kernel.dfg);
        let before = sched.schedule(&bk.kernel.dfg);
        let after = sched.schedule(&opt);
        after.validate(&opt).expect("optimised schedule valid");
        let label = format!("{bunches}b{}", if pipelined { "/pipe" } else { "" });
        t.row(&[
            label.clone(),
            stats.nodes_before.to_string(),
            stats.nodes_after.to_string(),
            before.makespan.to_string(),
            after.makespan.to_string(),
            format!("{:.3}", before.max_revolution_frequency(f_clk) / 1e6),
            format!("{:.3}", after.max_revolution_frequency(f_clk) / 1e6),
        ]);
        writeln!(
            csv,
            "{label},{},{},{},{},{:.4},{:.4}",
            stats.nodes_before,
            stats.nodes_after,
            before.makespan,
            after.makespan,
            before.max_revolution_frequency(f_clk) / 1e6,
            after.max_revolution_frequency(f_clk) / 1e6
        )
        .unwrap();
    }
    t.print();
    println!("\nreading: CSE removes the duplicated per-bunch scale constants");
    println!("and interpolation terms (fewer nodes = less issue pressure);");
    println!("the critical path barely moves, so the tick gains are modest —");
    println!("consistent with the kernel being latency-bound (ablation A4).");
    let path = write_csv("ablation_optimizer.csv", &csv);
    println!("\ndata -> {}", path.display());
}
