//! Fig. 2 — "Example for input and output signals with harmonic number
//! h = 2 (non-equilibrium snap-shot)".
//!
//! Runs the full signal-level framework at h = 2 with the bunches displaced
//! from equilibrium and captures a few reference periods of all four
//! signals: reference voltage (blue in the paper), gap voltage (black),
//! generated beam signal (green), and the monitoring output.

use cil_bench::{compare_line, write_csv};
use cil_core::framework::SimulatorFramework;
use cil_core::scenario::MdeScenario;
use cil_core::signalgen::{PhaseJumpProgram, SignalBench};
use std::fmt::Write as _;

fn main() {
    let mut scenario = MdeScenario::harmonic_two_snapshot();
    scenario.bunches = 2;
    let mut fw = SimulatorFramework::new(
        scenario.framework_config(),
        scenario.kernel_params().unwrap(),
    );
    let mut bench = SignalBench::new(
        250e6,
        scenario.f_rev,
        scenario.harmonic(),
        scenario.adc_amplitude,
        scenario.adc_amplitude,
        PhaseJumpProgram {
            amplitude_deg: 0.0,
            interval_s: 1.0,
            path_latency_s: 0.0,
        },
    );

    // Initialise, then displace both bunches (non-equilibrium snapshot).
    for _ in 0..(60e-6 * 250e6) as usize {
        let (r, g) = bench.tick();
        fw.push_sample(r, g);
    }
    let dt0 = 10.0 / 360.0 / (scenario.f_rev * f64::from(scenario.harmonic()));
    fw.set_kernel_static("dt_0", dt0);
    fw.set_kernel_static("dt_1", -dt0);

    // Let the displaced state propagate into armed pulses, then capture.
    for _ in 0..(5e-6 * 250e6) as usize {
        let (r, g) = bench.tick();
        fw.push_sample(r, g);
    }
    let mut csv = String::from("time_us,reference_v,gap_v,beam_v,monitor_v\n");
    let capture = (3.0 / scenario.f_rev * 250e6) as usize; // three reference periods
    let mut beam_peaks = 0usize;
    let mut last_beam = 0.0;
    for i in 0..capture {
        let (r, g) = bench.tick();
        let out = fw.push_sample(r, g);
        writeln!(
            csv,
            "{:.4},{:.5},{:.5},{:.5},{:.5}",
            i as f64 / 250.0,
            r,
            g,
            out.beam,
            out.monitor
        )
        .unwrap();
        if out.beam > 0.6 && last_beam <= 0.6 {
            beam_peaks += 1;
        }
        last_beam = out.beam;
    }
    let path = write_csv("fig2_signals.csv", &csv);

    println!("Fig. 2 — input/output signals at h = 2 (non-equilibrium snapshot)\n");
    println!(
        "captured: 3 reference periods ({} samples at 250 MS/s)",
        capture
    );
    println!(
        "{}",
        compare_line(
            "reference frequency",
            "800 kHz",
            &format!("{:.0} kHz", scenario.f_rev / 1e3)
        )
    );
    println!(
        "{}",
        compare_line(
            "gap frequency (h=2)",
            "1600 kHz",
            &format!(
                "{:.0} kHz",
                scenario.machine.rf_frequency(scenario.f_rev) / 1e3
            )
        )
    );
    println!(
        "{}",
        compare_line(
            "beam pulses per reference period",
            "2 (one per bucket)",
            &format!("{:.1}", beam_peaks as f64 / 3.0)
        )
    );
    println!("\nwaveform data -> {}", path.display());
}
