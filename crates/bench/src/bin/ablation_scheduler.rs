//! Ablation A7 — scheduler priority heuristics.
//!
//! The paper calls its scheduler "a customised resource-constrained list
//! scheduler" without quantifying the customisation. This ablation compares
//! three ready-list priorities on the beam kernels: critical-path height
//! (our default), least-mobility (ALAP−ASAP slack), and naive source order.

use cil_bench::{write_csv, Table};
use cil_cgra::grid::GridConfig;
use cil_cgra::kernels::{build_beam_kernel, KernelParams};
use cil_cgra::route::route;
use cil_cgra::sched::{ListScheduler, SchedulerPolicy};
use cil_core::scenario::MdeScenario;
use std::fmt::Write as _;

fn main() {
    let params: KernelParams = MdeScenario::nov24_2023().kernel_params().unwrap();
    let grid = GridConfig::mesh_5x5();
    println!("Ablation A7 — list-scheduler priority policies (5x5 mesh)\n");

    let mut t = Table::new(&[
        "kernel",
        "policy",
        "ticks",
        "vs critical-path",
        "routed transfers",
        "max link occupancy",
    ]);
    let mut csv = String::from("kernel,policy,ticks,transfers,max_occupancy\n");
    for (bunches, pipelined) in [(1usize, true), (8, true), (8, false)] {
        let bk = build_beam_kernel(&params, bunches, pipelined);
        let baseline = ListScheduler::with_policy(grid, SchedulerPolicy::CriticalPath)
            .schedule(&bk.kernel.dfg)
            .makespan;
        for policy in [
            SchedulerPolicy::CriticalPath,
            SchedulerPolicy::Mobility,
            SchedulerPolicy::SourceOrder,
        ] {
            let s = ListScheduler::with_policy(grid, policy).schedule(&bk.kernel.dfg);
            s.validate(&bk.kernel.dfg).expect("valid");
            let r = route(&bk.kernel.dfg, &s);
            let label = format!("{bunches}b{}", if pipelined { "/pipe" } else { "" });
            t.row(&[
                label.clone(),
                format!("{policy:?}"),
                s.makespan.to_string(),
                format!(
                    "{:+.1}%",
                    (s.makespan as f64 / baseline as f64 - 1.0) * 100.0
                ),
                r.routed_transfers.to_string(),
                r.max_link_occupancy.to_string(),
            ]);
            writeln!(
                csv,
                "{label},{policy:?},{},{},{}",
                s.makespan, r.routed_transfers, r.max_link_occupancy
            )
            .unwrap();
        }
    }
    t.print();
    println!("\nreading: on this latency-bound kernel the informed priorities");
    println!("(critical-path, mobility) track each other closely; naive source");
    println!("order pays a measurable penalty — the customisation the paper's");
    println!("scheduler needs is mostly 'respect the critical path'.");
    let path = write_csv("ablation_scheduler.csv", &csv);
    println!("\ndata -> {}", path.display());
}
