//! Standing closed-loop throughput benchmark — revolutions per second for
//! every engine fidelity and execution mode (micro-op plan vs legacy DFG
//! walk, batched `step_block` vs per-turn stepping).
//!
//! Prints the table and writes `results/BENCH_loop.json`. Meaningful in
//! release builds only (`cargo run --release -p cil-bench --bin
//! bench_loop`); the release-only `loop_guard` test enforces the 1.5x
//! plan+batched vs walk+per-turn bound on CI.
//!
//! Flags: `--revolutions N` (default 10000), `--runs N` (default 5).

use cil_bench::loop_bench::{run_loop_bench, speedup, write_bench_json};
use cil_bench::{arg_value, Table};

/// The guard bound: plan+batched CGRA must beat the legacy per-turn walk
/// by at least this factor.
const BOUND: f64 = 1.5;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let revolutions: u64 =
        arg_value(&args, "--revolutions").map_or(10_000, |v| v.parse().expect("--revolutions N"));
    let runs: usize = arg_value(&args, "--runs").map_or(5, |v| v.parse().expect("--runs N"));
    if cfg!(debug_assertions) {
        eprintln!("warning: debug build — timings are not meaningful");
    }
    println!("Closed-loop throughput (best of {runs} runs, {revolutions} revolutions)\n");

    let rows = run_loop_bench(revolutions, runs);
    let mut t = Table::new(&["case", "revolutions", "wall [ms]", "revs/s"]);
    for r in &rows {
        t.row(&[
            r.label.to_string(),
            format!("{}", r.revolutions),
            format!("{:.2}", r.wall_s * 1e3),
            format!("{:.0}", r.revs_per_sec),
        ]);
    }
    t.print();

    let ratio = speedup(&rows, "cgra_plan_batched", "cgra_walk_per_turn");
    let ratio_observed = speedup(&rows, "cgra_plan_observed", "cgra_walk_per_turn");
    println!("\nplan+batched vs legacy walk per-turn (CGRA): {ratio:.2}x (bound {BOUND}x)");
    println!(
        "plan+batched with observer vs legacy walk per-turn: {ratio_observed:.2}x (bound {BOUND}x)"
    );
    let path = write_bench_json(revolutions, runs, &rows, ratio, ratio_observed, BOUND);
    println!("data -> {}", path.display());
}
