//! Controller-stability phase diagram via the crash-safe campaign runner —
//! the headline experiment the paper couldn't run in hardware.
//!
//! The MDE validated one controller setting (gain −5, recursion 0.99,
//! 8° jumps) in a few hours of beam time. With the loop fully simulated,
//! the same closed loop can be swept across the whole
//! gain × recursion × jump-amplitude cube — ~10⁵ scenario points — and the
//! campaign layer makes that a single resumable run: shards commit to
//! `campaign.log` as they finish, a kill resumes at the last committed
//! shard, and any point whose controller drives the engine into a panic or
//! error is quarantined instead of sinking the sweep.
//!
//! Outputs:
//! * `results/phase_diagram.csv` — one row per point: the swept knobs plus
//!   first-peak ratio, residual ratio and damping time (empty cells for
//!   quarantined points). Plot with `scripts/plot_phase_diagram.py`.
//! * `results/BENCH_campaign.json` — points/s at several worker counts on
//!   a subset, the full campaign's throughput, and the resume overhead
//!   (re-running a completed campaign: WAL scan + CSV rewrite, no
//!   simulation).
//!
//! `--quick` shrinks the cube to a few hundred points (CI smoke); the full
//! diagram is the default. `--dir <path>` relocates the campaign
//! directory (default `target/campaign_runner`).

use cil_bench::{arg_flag, arg_value, results_dir, write_csv};
use cil_core::campaign::{Campaign, CampaignConfig, CampaignWorker, PointStatus};
use cil_core::error::Result as CilResult;
use cil_core::hil::{EngineKind, TurnLevelLoop};
use cil_core::scenario::MdeScenario;
use cil_core::telemetry::TelemetryRegistry;
use cil_core::trace::score_jump_response;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// One closed-loop evaluation: turn-level Map-fidelity loop, one phase
/// jump, scored over the window up to the next jump edge.
fn evaluate(worker: &mut CampaignWorker, s: &MdeScenario) -> CilResult<Vec<f64>> {
    let engine = worker.arena.engine(s, EngineKind::Map)?;
    let result = TurnLevelLoop::new(s.clone(), EngineKind::Map)
        .with_telemetry(&worker.telemetry)
        .run_on(engine, true)?;
    let t_jump = result.jump_times[0];
    let r = score_jump_response(
        &result.phase_deg,
        t_jump,
        t_jump + s.jumps.interval_s - 2e-4,
        s.jumps.amplitude_deg,
    );
    Ok(vec![
        r.first_peak_ratio,
        r.residual_ratio,
        r.damping_time_s.unwrap_or(f64::NAN),
    ])
}

/// The swept cube. Scenario trimmed so one point is ~10⁴ revolutions:
/// jump at 5 ms, scored to the next jump edge at 10 ms (~6.4 synchrotron
/// periods at f_s = 1.28 kHz — enough to classify damped vs ringing vs
/// diverging).
fn grid(quick: bool) -> Vec<MdeScenario> {
    let (gains, recursions, amplitudes): (Vec<f64>, Vec<f64>, Vec<f64>) = if quick {
        (lin(-12.0, 4.0, 8), lin(0.90, 1.0, 4), lin(2.0, 20.0, 4))
    } else {
        (
            lin(-14.0, 6.0, 47),
            lin(0.90, 1.005, 43),
            lin(1.0, 25.0, 50),
        )
    };
    let mut points = Vec::with_capacity(gains.len() * recursions.len() * amplitudes.len());
    for &gain in &gains {
        for &recursion in &recursions {
            for &e_deg in &amplitudes {
                let mut s = MdeScenario::nov24_2023();
                s.duration_s = 0.0125;
                s.bunches = 1;
                s.jumps.interval_s = 0.005;
                s.jumps.amplitude_deg = e_deg;
                s.controller.gain = gain;
                s.controller.recursion = recursion;
                points.push(s);
            }
        }
    }
    points
}

fn lin(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1).max(1) as f64)
        .collect()
}

fn config(dir: PathBuf, workers: usize) -> CampaignConfig {
    let mut cfg = CampaignConfig::new(
        dir,
        &["first_peak_ratio", "residual_ratio", "damping_time_s"],
    );
    cfg.shard_points = 512;
    cfg.workers = workers;
    // The loop is deterministic: a failing point fails identically on
    // every retry, so one retry (which proves the retry path) is plenty.
    cfg.max_retries = 1;
    cfg
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = arg_flag(&args, "--quick");
    let base_dir =
        PathBuf::from(arg_value(&args, "--dir").unwrap_or_else(|| "target/campaign_runner".into()));
    let nproc = std::thread::available_parallelism().map_or(1, |v| v.get());

    println!("Campaign runner — controller-stability phase diagram");
    // The recursion ≥ 1.0 boundary of the cube is rejected by the DSP
    // layer with a panic; the campaign quarantines those points, which is
    // the point — but the default panic hook would print thousands of
    // backtraces while it does, so quiet it for the run.
    std::panic::set_hook(Box::new(|_| {}));
    let points = grid(quick);
    println!(
        "grid: {} points (gain x recursion x jump amplitude), {} workers max\n",
        points.len(),
        nproc
    );

    // ---- worker-scaling subset -------------------------------------------
    let subset_n = if quick { 64 } else { 1024 };
    let subset = &points[..subset_n.min(points.len())];
    let mut worker_counts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&w| w <= 2 * nproc)
        .collect();
    if !worker_counts.contains(&nproc) {
        worker_counts.push(nproc);
    }
    let mut scaling = Vec::new();
    for &workers in &worker_counts {
        let dir = base_dir.join(format!("scaling_w{workers}"));
        let _ = std::fs::remove_dir_all(&dir);
        let campaign = Campaign::new(subset, config(dir, workers)).expect("config is valid");
        let t = Instant::now();
        let report = campaign.run(evaluate).expect("subset campaign runs");
        let wall = t.elapsed().as_secs_f64();
        println!(
            "  workers={workers:<2} subset={:<5} wall={wall:>7.2}s  {:>8.1} points/s",
            subset.len(),
            subset.len() as f64 / wall
        );
        assert_eq!(report.completed + report.quarantined, subset.len());
        scaling.push((workers, subset.len(), wall));
    }

    // ---- the full (or quick) phase diagram -------------------------------
    let dir = base_dir.join(if quick { "diagram_quick" } else { "diagram" });
    let root = TelemetryRegistry::new();
    let campaign = Campaign::new(&points, config(dir.clone(), nproc)).expect("config is valid");
    let t = Instant::now();
    let report = campaign
        .run_with_telemetry(&root, evaluate)
        .expect("phase-diagram campaign runs");
    let fresh_wall = t.elapsed().as_secs_f64();
    println!(
        "\nphase diagram: {} completed, {} quarantined, {} retries, {} shards ({} resumed) in {:.1}s ({:.1} points/s)",
        report.completed,
        report.quarantined,
        report.retries,
        report.shards_total,
        report.shards_resumed,
        fresh_wall,
        points.len() as f64 / fresh_wall
    );

    // ---- resume overhead: re-run the finished campaign --------------------
    let campaign2 = Campaign::new(&points, config(dir, nproc)).expect("config is valid");
    let t = Instant::now();
    let resumed = campaign2.run(evaluate).expect("resume runs");
    let resume_wall = t.elapsed().as_secs_f64();
    assert_eq!(resumed.shards_resumed, report.shards_total);
    println!(
        "resume of completed campaign: {resume_wall:.3}s (WAL scan + CSV rewrite, no simulation)"
    );

    // ---- results/phase_diagram.csv ---------------------------------------
    let mut csv = String::from(
        "gain,recursion,jump_amplitude_deg,first_peak_ratio,residual_ratio,damping_time_s\n",
    );
    for (s, o) in points.iter().zip(&report.outcomes) {
        let _ = write!(
            csv,
            "{},{},{}",
            s.controller.gain, s.controller.recursion, s.jumps.amplitude_deg
        );
        match &o.status {
            PointStatus::Completed(v) => {
                for x in v {
                    if x.is_nan() {
                        csv.push(',');
                    } else {
                        let _ = write!(csv, ",{x}");
                    }
                }
            }
            PointStatus::Quarantined(_) => csv.push_str(",,,"),
        }
        csv.push('\n');
    }
    let csv_path = write_csv("phase_diagram.csv", &csv);
    println!("wrote {}", csv_path.display());

    // ---- results/BENCH_campaign.json -------------------------------------
    let snap = root.snapshot();
    let mut scaling_json = String::new();
    for (i, (workers, n, wall)) in scaling.iter().enumerate() {
        if i > 0 {
            scaling_json.push(',');
        }
        let _ = write!(
            scaling_json,
            "{{\"workers\":{workers},\"points\":{n},\"wall_s\":{wall:.6},\"points_per_sec\":{:.3}}}",
            *n as f64 / wall
        );
    }
    let json = format!(
        "{{\"bench\":\"campaign\",\"quick\":{quick},\"points\":{},\"shards\":{},\
\"completed\":{},\"quarantined\":{},\"retries\":{},\
\"fresh_wall_s\":{fresh_wall:.6},\"points_per_sec\":{:.3},\
\"resume_wall_s\":{resume_wall:.6},\"resume_overhead_frac\":{:.6},\
\"arena_hits\":{},\"arena_misses\":{},\
\"scaling\":[{scaling_json}]}}\n",
        points.len(),
        report.shards_total,
        report.completed,
        report.quarantined,
        report.retries,
        points.len() as f64 / fresh_wall,
        resume_wall / fresh_wall,
        snap.counter("cil_arena_hits_total").unwrap_or(0),
        snap.counter("cil_arena_misses_total").unwrap_or(0),
    );
    let json_path = results_dir().join("BENCH_campaign.json");
    std::fs::write(&json_path, json).expect("write BENCH_campaign.json");
    println!("wrote {}", json_path.display());
}
