//! Fig. 5 — "Measurement of the difference in phase between the reference
//! signal and the beam signal" — the paper's headline result.
//!
//! * `--side sim` (default): Fig. 5a — our CGRA-based HIL simulator under
//!   the MDE parameters (800 kHz / h = 4, ¹⁴N⁷⁺, f_s = 1.28 kHz, 8° jumps
//!   every 0.05 s, controller f_pass = 1.4 kHz / gain −5 / recursion 0.99).
//! * `--side mde`: Fig. 5b — the "real SIS18 beam" stand-in: a
//!   multi-macro-particle nonlinear tracker (Landau damping present) under
//!   the same closed-loop control with the MDE's 10° jumps and 1.2 kHz.
//! * `--side both`: run both and print the comparison (the paper's claim is
//!   their "remarkable similarity").
//!
//! Options: `--fidelity signal|turn` (sim side; signal = full 250 MS/s
//! chain, the default, ~30 s; turn = per-revolution, instant),
//! `--duration <seconds>` (default 0.4 as in the figure),
//! `--particles <n>` (mde side, default 10000).

use cil_bench::{arg_value, compare_line, write_csv, Table};
use cil_core::engine::RefTrackEngine;
use cil_core::harness::LoopHarness;
use cil_core::hil::{EngineKind, SignalLevelLoop, TurnLevelLoop};
use cil_core::scenario::MdeScenario;
use cil_core::trace::{score_jump_response, JumpResponse, TimeSeries};

struct SideResult {
    label: String,
    trace: TimeSeries,
    jump_times: Vec<f64>,
    fs_hz: f64,
    response: JumpResponse,
}

fn analyse(label: &str, trace: TimeSeries, jump_times: Vec<f64>, jump_deg: f64) -> SideResult {
    let t_jump = *jump_times.first().expect("no jump in trace");
    let window_end = jump_times
        .get(1)
        .copied()
        .unwrap_or(trace.t0 + trace.dt * trace.len() as f64);
    let response = score_jump_response(&trace, t_jump, window_end, jump_deg);
    // fs from the post-jump window.
    let w = trace.window(t_jump + 1e-4, window_end);
    let (fs_hz, _) = w.dominant_frequency(600.0, 3000.0);
    SideResult {
        label: label.to_string(),
        trace,
        jump_times,
        fs_hz,
        response,
    }
}

fn run_sim(duration: f64, fidelity: &str) -> SideResult {
    let mut s = MdeScenario::nov24_2023();
    s.duration_s = duration;
    s.bunches = 1; // the phase trace follows one bunch, as in Fig. 5a
    let result = match fidelity {
        "turn" => TurnLevelLoop::new(s.clone(), EngineKind::Cgra)
            .run(true)
            .unwrap(),
        "signal" => SignalLevelLoop::new(s.clone()).run(duration, true).unwrap(),
        other => panic!("unknown fidelity '{other}' (use signal|turn)"),
    };
    let display = result.display_trace(); // the paper's 5-sample averaging
    analyse(
        &format!("simulator ({fidelity}-level)"),
        display,
        result.jump_times,
        s.jumps.amplitude_deg,
    )
}

fn run_mde_standin(duration: f64, particles: usize) -> SideResult {
    // The MDE: 10° jumps, synchrotron frequency 1.2 kHz. Real injected
    // beams are never perfectly centred, hence the 1 ns launch displacement.
    let mut s = MdeScenario::nov24_2023();
    s.fs_target = 1.2e3;
    s.jumps.amplitude_deg = 10.0;
    let mut engine = RefTrackEngine::from_scenario(&s, particles, 20231124, 15e-9, 1e-9).unwrap();
    let mut harness = LoopHarness::for_scenario(&s, true);
    let trace = harness.run(&mut engine, duration);
    let series = TimeSeries::new(0.0, 1.0 / s.f_rev, trace.mean_phase_deg).averaged(5);
    analyse(
        &format!("MDE stand-in ({particles} macro particles)"),
        series,
        trace.jump_times,
        s.jumps.amplitude_deg,
    )
}

fn print_side(r: &SideResult, paper_fs: f64) {
    println!("== {} ==", r.label);
    let csv_name = format!(
        "fig5_{}.csv",
        r.label
            .split_whitespace()
            .next()
            .unwrap_or("side")
            .to_lowercase()
            .replace('(', "")
    );
    let path = write_csv(&csv_name, &r.trace.to_csv());
    println!(
        "{}",
        compare_line(
            "synchrotron frequency",
            &format!("{paper_fs:.2} kHz"),
            &format!("{:.2} kHz", r.fs_hz / 1e3)
        )
    );
    println!(
        "{}",
        compare_line(
            "first peak after jump",
            "2 x jump amplitude",
            &format!("{:.2} x", r.response.first_peak_ratio)
        )
    );
    println!(
        "{}",
        compare_line(
            "oscillation damped before next jump",
            "yes",
            if r.response.residual_ratio < 0.5 {
                "yes"
            } else {
                "no"
            },
        )
    );
    if let Some(tau) = r.response.damping_time_s {
        println!(
            "{}",
            compare_line(
                "damping time constant",
                "(a few ms, Fig. 5)",
                &format!("{:.1} ms", tau * 1e3)
            )
        );
    }
    println!(
        "{}",
        compare_line(
            "jump interval",
            "0.05 s",
            &format!(
                "{:.3} s",
                r.jump_times
                    .get(1)
                    .map_or(f64::NAN, |t| t - r.jump_times[0])
            )
        )
    );
    println!("  trace -> {}\n", path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let side = arg_value(&args, "--side").unwrap_or_else(|| "sim".into());
    let fidelity = arg_value(&args, "--fidelity").unwrap_or_else(|| "signal".into());
    let duration: f64 =
        arg_value(&args, "--duration").map_or(0.4, |v| v.parse().expect("bad --duration"));
    let particles: usize =
        arg_value(&args, "--particles").map_or(10_000, |v| v.parse().expect("bad --particles"));

    println!("Fig. 5 — beam-vs-reference phase under periodic phase jumps, closed loop\n");

    let mut results = Vec::new();
    if side == "sim" || side == "both" {
        results.push((run_sim(duration, &fidelity), 1.28));
    }
    if side == "mde" || side == "both" {
        results.push((run_mde_standin(duration, particles), 1.2));
    }
    if results.is_empty() {
        eprintln!("unknown --side '{side}' (use sim|mde|both)");
        std::process::exit(2);
    }
    for (r, paper_fs) in &results {
        print_side(r, *paper_fs);
    }

    if results.len() == 2 {
        let mut t = Table::new(&["metric", "simulator (5a)", "real-beam stand-in (5b)"]);
        let (a, b) = (&results[0].0, &results[1].0);
        t.row(&[
            "fs measured [kHz]".into(),
            format!("{:.2}", a.fs_hz / 1e3),
            format!("{:.2}", b.fs_hz / 1e3),
        ]);
        t.row(&[
            "first peak / jump".into(),
            format!("{:.2}", a.response.first_peak_ratio),
            format!("{:.2}", b.response.first_peak_ratio),
        ]);
        t.row(&[
            "residual ratio".into(),
            format!("{:.2}", a.response.residual_ratio),
            format!("{:.2}", b.response.residual_ratio),
        ]);
        println!("comparison (the paper's \"remarkable similarity\"):\n");
        t.print();
    }
}
