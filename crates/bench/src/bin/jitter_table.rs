//! §I motivation (experiment M1): output-timing jitter of a software
//! simulator vs the CGRA/FPGA implementation.
//!
//! "In principle it could be fast enough, but the time jitter induced by
//! the microarchitecture and the interfacing to the sensors was too high."
//! The table reports RMS / p99.9 / worst-case output-pulse timing error for
//! the three implementation models against the hard budget of a fraction of
//! the minimum revolution time (T_R ≈ 0.7 µs).

use cil_bench::{write_csv, Table};
use cil_core::jitter::{Implementation, JitterModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

fn main() {
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    let n = 2_000_000;
    let budget = 7e-9; // 1% of T_R,min = 0.7 µs

    let mut t = Table::new(&["implementation", "rms", "p99.9", "worst", "budget 7 ns"]);
    let mut csv = String::from("implementation,rms_s,p999_s,worst_s,meets_budget\n");
    for imp in [
        Implementation::CgraFpga,
        Implementation::RealtimeSoftware,
        Implementation::GeneralPurposeSoftware,
    ] {
        let s = JitterModel::for_implementation(imp).summarize(n, &mut rng);
        let fmt = |v: f64| {
            if v < 1e-6 {
                format!("{:.2} ns", v * 1e9)
            } else {
                format!("{:.2} us", v * 1e6)
            }
        };
        t.row(&[
            format!("{imp:?}"),
            fmt(s.rms),
            fmt(s.p999),
            fmt(s.worst),
            if s.meets_budget(budget) {
                "PASS".into()
            } else {
                "FAIL".into()
            },
        ]);
        writeln!(
            csv,
            "{imp:?},{:.3e},{:.3e},{:.3e},{}",
            s.rms,
            s.p999,
            s.worst,
            s.meets_budget(budget)
        )
        .unwrap();
    }

    println!("§I motivation — output-pulse timing jitter over {n} revolutions\n");
    t.print();
    println!();
    println!("paper claim: only the FPGA/CGRA path gives the deterministic");
    println!("sub-sample timing a hardware-in-the-loop LLRF test bench needs;");
    println!("a software loop's tail latencies blow the revolution budget.");
    let path = write_csv("jitter_table.csv", &csv);
    println!("\ndata -> {}", path.display());
}
