//! RefTrack kernel case-matrix benchmark — particle-turns/s for every sine
//! backend (host libm, runtime-dispatched `Auto`, and each polynomial
//! backend the host exposes) at small/medium/large ensembles, plus the full
//! closed-loop `RefTrackEngine` path on both `Auto` and libm.
//!
//! Prints the table and writes `results/BENCH_reftrack.json`. Meaningful in
//! release builds only (`cargo run --release -p cil-bench --bin
//! bench_reftrack`); the release-only `reftrack_guard` test enforces the
//! kernel and engine bounds on CI.
//!
//! Flags: `--revolutions N` (engine cases, default 10000), `--runs N`
//! (default 3).

use cil_bench::reftrack_bench::{
    guard_ratios, run_reftrack_bench, write_bench_json, ENGINE_BOUND, KERNEL_BOUND,
};
use cil_bench::{arg_value, Table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let revolutions: u64 =
        arg_value(&args, "--revolutions").map_or(10_000, |v| v.parse().expect("--revolutions N"));
    let runs: usize = arg_value(&args, "--runs").map_or(3, |v| v.parse().expect("--runs N"));
    if cfg!(debug_assertions) {
        eprintln!("warning: debug build — timings are not meaningful");
    }
    println!("RefTrack kernel throughput (best of {runs} runs)\n");

    let rows = run_reftrack_bench(revolutions, runs);
    let mut t = Table::new(&[
        "case",
        "particles",
        "threads",
        "turns",
        "wall [ms]",
        "Mpart-turns/s",
        "ns/particle-turn",
    ]);
    for r in &rows {
        t.row(&[
            r.label.clone(),
            format!("{}", r.particles),
            format!("{}", r.threads),
            format!("{}", r.turns),
            format!("{:.2}", r.wall_s * 1e3),
            format!("{:.2}", r.particle_turns_per_sec * 1e-6),
            format!("{:.2}", r.ns_per_particle_turn),
        ]);
    }
    t.print();

    let (kernel_ratio, engine_ratio) = guard_ratios(&rows);
    println!(
        "\npolynomial kernel vs host libm (large ensemble): {kernel_ratio:.2}x (bound {KERNEL_BOUND}x)"
    );
    println!(
        "closed-loop engine Auto vs libm:               {engine_ratio:.2}x (bound {ENGINE_BOUND}x)"
    );
    let path = write_bench_json(runs, &rows);
    println!("data -> {}", path.display());
}
