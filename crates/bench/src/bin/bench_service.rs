//! Standing multi-session service benchmark — aggregate fleet throughput
//! and p99 dispatch latency of the [`SessionMux`] across a worker-count
//! sweep, with the single-loop `map_batched` rate as the per-core
//! baseline.
//!
//! Prints the table and writes `results/BENCH_service.json`. Meaningful in
//! release builds only (`cargo run --release -p cil-bench --bin
//! bench_service`); the release-only `service_guard` test enforces the
//! 0.5x-of-baseline aggregate bound on CI.
//!
//! Flags: `--sessions N` (default 1000), `--revolutions N` (hot-session
//! rows, default 2000), `--workers a,b,c` (default `1,2,4,8`).
//!
//! [`SessionMux`]: cil_core::SessionMux

use cil_bench::service_bench::{baseline_map_rate, run_service_bench, scaling, write_service_json};
use cil_bench::{arg_value, Table};

/// The guard bound: the fleet aggregate must reach at least this fraction
/// of the single-loop baseline per worker-independent core.
const BOUND: f64 = 0.5;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sessions: usize =
        arg_value(&args, "--sessions").map_or(1000, |v| v.parse().expect("--sessions N"));
    let revolutions: u64 =
        arg_value(&args, "--revolutions").map_or(2000, |v| v.parse().expect("--revolutions N"));
    let workers: Vec<usize> = arg_value(&args, "--workers").map_or_else(
        || vec![1, 2, 4, 8],
        |v| {
            v.split(',')
                .map(|w| w.parse().expect("--workers a,b,c"))
                .collect()
        },
    );
    if cfg!(debug_assertions) {
        eprintln!("warning: debug build — timings are not meaningful");
    }
    println!(
        "SessionMux service throughput ({sessions} sessions, 90/10 skew, \
         hot sessions {revolutions} revolutions)\n"
    );

    let baseline = baseline_map_rate(revolutions.max(100_000), 3);
    let rows = run_service_bench(&workers, sessions, revolutions, 3);
    let mut t = Table::new(&[
        "workers",
        "sessions",
        "total rows",
        "wall [ms]",
        "aggregate revs/s",
        "vs 1-loop baseline",
        "p99 dispatch [us]",
    ]);
    for r in &rows {
        t.row(&[
            r.workers.to_string(),
            r.sessions.to_string(),
            r.total_rows.to_string(),
            format!("{:.1}", r.wall_s * 1e3),
            format!("{:.0}", r.revs_per_sec),
            format!("{:.2}x", r.revs_per_sec / baseline),
            format!("{:.1}", r.p99_dispatch_s * 1e6),
        ]);
    }
    t.print();
    println!("\nsingle-loop map_batched baseline: {baseline:.0} revs/s");
    if rows.iter().any(|r| r.workers == 8) && rows.iter().any(|r| r.workers == 1) {
        println!("scaling 1 -> 8 workers: {:.2}x", scaling(&rows, 8, 1));
    }
    let path = write_service_json(revolutions, &rows, baseline, BOUND);
    println!("data -> {}", path.display());
}
