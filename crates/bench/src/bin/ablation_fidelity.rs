//! Ablation A6 — simulation fidelity cross-check.
//!
//! The same MDE experiment at three fidelities: the plain two-particle map
//! (turn level), the CGRA executor on analytic signals (turn level), and
//! the full 250 MS/s signal chain. Open loop, one jump: the oscillation
//! frequency and amplitude must agree — and the table quantifies what each
//! modelling layer adds (staleness, quantisation) and costs (wall time).
//!
//! Wall time is read back from the telemetry registry's per-run histogram
//! spans rather than ad-hoc `Instant` bookkeeping; pass `--telemetry` to
//! dump the full metrics snapshot (Prometheus text format) after the table.

use cil_bench::{write_csv, Table};
use cil_core::hil::{EngineKind, SignalLevelLoop, TurnLevelLoop};
use cil_core::scenario::MdeScenario;
use cil_core::telemetry::{sample_global_kernel_cache, TelemetryRegistry};
use std::fmt::Write as _;

fn main() {
    let telemetry = std::env::args().any(|a| a == "--telemetry");
    let registry = TelemetryRegistry::new();
    let mut s = MdeScenario::nov24_2023();
    s.duration_s = 0.012;
    s.bunches = 1;
    s.pipelined = false; // isolate fidelity effects from pipeline staleness
    s.instrument_offset_deg = 0.0;
    s.jumps.interval_s = 4e-3;

    println!("Ablation A6 — fidelity cross-check (open loop, 8 deg jumps every 4 ms)\n");
    let mut t = Table::new(&[
        "fidelity",
        "fs [Hz]",
        "osc amplitude [deg]",
        "wall time [ms]",
        "sim slowdown vs real time",
    ]);
    let mut csv = String::from("fidelity,fs_hz,amp_deg,wall_ms\n");
    let reg = registry.clone();
    let mut measure = |label: &str, metric: &str, runner: &dyn Fn() -> cil_core::hil::HilResult| {
        let hist = reg.histogram(metric);
        let result = {
            let _span = hist.time();
            runner()
        };
        let wall = hist.sum();
        let start = result.jump_times[0] + 1e-4;
        let w = result.phase_deg.window(start, s.duration_s);
        let (fs, amp) = w.dominant_frequency(600.0, 3000.0);
        t.row(&[
            label.into(),
            format!("{fs:.0}"),
            format!("{amp:.2}"),
            format!("{:.1}", wall * 1e3),
            format!("{:.1}x", wall / s.duration_s),
        ]);
        writeln!(csv, "{label},{fs:.1},{amp:.3},{:.2}", wall * 1e3).unwrap();
    };

    let s1 = s.clone();
    let r1 = registry.clone();
    measure(
        "turn-level, two-particle map",
        "cil_bench_fidelity_run_wall_seconds{fidelity=\"map\"}",
        &move || {
            TurnLevelLoop::new(s1.clone(), EngineKind::Map)
                .with_telemetry(&r1)
                .run(false)
                .unwrap()
        },
    );
    let s2 = s.clone();
    let r2 = registry.clone();
    measure(
        "turn-level, CGRA executor",
        "cil_bench_fidelity_run_wall_seconds{fidelity=\"cgra\"}",
        &move || {
            TurnLevelLoop::new(s2.clone(), EngineKind::Cgra)
                .with_telemetry(&r2)
                .run(false)
                .unwrap()
        },
    );
    let s3 = s.clone();
    let r3 = registry.clone();
    let dur = s.duration_s;
    measure(
        "signal-level, full 250 MS/s chain",
        "cil_bench_fidelity_run_wall_seconds{fidelity=\"signal\"}",
        &move || {
            SignalLevelLoop::new(s3.clone())
                .with_telemetry(&r3)
                .run(dur, false)
                .unwrap()
        },
    );

    t.print();
    println!("\nreading: all three agree on the synchrotron frequency and the");
    println!("2x-jump oscillation amplitude; the signal-level chain adds the");
    println!("converter/trigger quantisation and costs ~3 orders of magnitude");
    println!("in wall time — which is exactly why the paper needs the CGRA to");
    println!("do this in hard real time.");
    let path = write_csv("ablation_fidelity.csv", &csv);
    println!("\ndata -> {}", path.display());

    if telemetry {
        sample_global_kernel_cache(&registry);
        println!("\n--- telemetry (Prometheus text format) ---");
        print!("{}", registry.snapshot().to_prometheus());
    }
}
