//! Headline ablation — cavity-failure injection × onset × compensation.
//!
//! Sweeps the three cavity fault kinds (quench, trip, tune drift) over a
//! grid of onset times around the worst case — a quarter synchrotron
//! period after a persistent 8° phase jump, at peak energy swing — and
//! runs every cell under each RF compensation policy on the same seed.
//! The table reports the supervisor's degradation ladder (sag detection,
//! compensation engagement) and the survival each policy buys relative
//! to doing nothing: the headline claim is that compensation strictly
//! extends the beam-loss turn wherever the fault is fatal.

use cil_bench::{write_csv, Table};
use cil_core::fault::LoopEvent;
use cil_core::harness::LoopHarness;
use cil_core::hil::EngineKind;
use cil_core::signalgen::PhaseJumpProgram;
use cil_core::{CompensationPolicy, FaultProgram, LoopOutcome, LoopSupervisor, MdeScenario};
use std::fmt::Write as _;

const JUMP_S: f64 = 0.05;
const SEED: u64 = 0xCAF0;

struct Cell {
    sag_turn: Option<usize>,
    engaged_turn: Option<usize>,
    boost: f64,
    gain: f64,
    outcome: LoopOutcome,
}

fn fault_program(kind: &str, onset_s: f64) -> FaultProgram {
    match kind {
        // Exponential collapse, tau = 1 ms, never recovers.
        "quench" => FaultProgram::cavity_quench(onset_s, 1e-3, SEED),
        // 5 ms hard dropout with a 10 ms linear recovery ramp.
        "trip" => FaultProgram::cavity_trip(onset_s, onset_s + 5e-3, 10e-3, SEED),
        // 200 Hz/s tune drift for 100 ms (the accumulated detuning holds).
        "detune" => FaultProgram::cavity_detune(onset_s, onset_s + 0.1, 200.0, SEED),
        other => panic!("unknown fault kind {other}"),
    }
}

fn run_cell(kind: &str, onset_s: f64, policy: CompensationPolicy) -> Cell {
    let mut s = MdeScenario::nov24_2023();
    s.duration_s = 0.3;
    s.bunches = 1;
    s.jumps = PhaseJumpProgram {
        amplitude_deg: 8.0,
        interval_s: 10.0,
        path_latency_s: -(10.0 - JUMP_S),
    };
    s.faults = fault_program(kind, onset_s);

    let mut harness = LoopHarness::for_scenario(&s, true);
    let mut sup = LoopSupervisor::for_scenario(&s);
    sup.config.compensation = policy;
    let trace = harness
        .run_supervised(&s, EngineKind::Map, s.duration_s, &mut sup)
        .expect("supervised run completes");

    let sag_turn = trace.events.iter().find_map(|e| match *e {
        LoopEvent::CavitySagDetected { turn, .. } => Some(turn),
        _ => None,
    });
    let engaged_turn = trace.events.iter().find_map(|e| match *e {
        LoopEvent::CompensationEngaged { turn, .. } => Some(turn),
        _ => None,
    });
    Cell {
        sag_turn,
        engaged_turn,
        boost: sup.commanded_boost(),
        gain: sup.commanded_gain_scale(),
        outcome: trace.outcome,
    }
}

fn main() {
    // Onsets: at peak energy swing (quarter synchrotron period after the
    // jump), mid-damping, and after the loop has settled the jump.
    let onsets = [0.0502, 0.06, 0.09];
    let kinds = ["quench", "trip", "detune"];
    let policies = [
        CompensationPolicy::None,
        CompensationPolicy::gain_rescale(),
        CompensationPolicy::voltage_rematch(),
    ];

    println!("Headline ablation — cavity failure x onset x compensation");
    println!("(8 deg persistent jump at {JUMP_S} s, map engine, 0.3 s budget)\n");
    let mut t = Table::new(&[
        "fault",
        "onset [s]",
        "policy",
        "sag @",
        "engaged @",
        "boost",
        "gain",
        "outcome",
        "vs none",
    ]);
    let mut csv = String::from(
        "fault,onset_s,policy,sag_turn,engaged_turn,boost,gain_scale,\
         survived,loss_turn,loss_time_s,loss_cause,extension_turns\n",
    );
    for kind in kinds {
        for onset in onsets {
            let mut baseline_loss: Option<usize> = None;
            for policy in policies {
                let cell = run_cell(kind, onset, policy);
                let (survived, loss_turn, loss_time, cause) = match cell.outcome {
                    LoopOutcome::Survived => (true, None, None, String::new()),
                    LoopOutcome::Lost {
                        turn,
                        time_s,
                        cause,
                    } => (false, Some(turn), Some(time_s), format!("{cause:?}")),
                };
                if matches!(policy, CompensationPolicy::None) {
                    baseline_loss = loss_turn;
                }
                // Turns of survival the policy buys over no compensation
                // (only defined when the uncompensated run is fatal).
                let extension = match (baseline_loss, loss_turn) {
                    (Some(b), Some(t)) => Some(t as i64 - b as i64),
                    (Some(b), None) => Some(240_000 - b as i64), // survived the full budget
                    _ => None,
                };
                let outcome_str = if survived {
                    "survived".to_string()
                } else {
                    format!("lost @ {}", loss_turn.unwrap())
                };
                t.row(&[
                    kind.into(),
                    format!("{onset:.4}"),
                    policy.label().into(),
                    cell.sag_turn.map_or("-".into(), |v| v.to_string()),
                    cell.engaged_turn.map_or("-".into(), |v| v.to_string()),
                    format!("{:.2}", cell.boost),
                    format!("{:.2}", cell.gain),
                    outcome_str,
                    extension.map_or("-".into(), |v| format!("{v:+}")),
                ]);
                writeln!(
                    csv,
                    "{kind},{onset},{},{},{},{:.3},{:.3},{},{},{},{},{}",
                    policy.label(),
                    cell.sag_turn.map_or(String::new(), |v| v.to_string()),
                    cell.engaged_turn.map_or(String::new(), |v| v.to_string()),
                    cell.boost,
                    cell.gain,
                    survived,
                    loss_turn.map_or(String::new(), |v| v.to_string()),
                    loss_time.map_or(String::new(), |v| format!("{v:.6}")),
                    cause,
                    extension.map_or(String::new(), |v| v.to_string()),
                )
                .unwrap();
            }
        }
    }
    t.print();
    println!("\nreading: a quench at peak energy swing is fatal under every");
    println!("policy, but both compensations extend survival (positive 'vs");
    println!("none'); away from peak swing the quench is survivable. A hard");
    println!("trip is all-or-nothing — boosting a zero voltage stays zero, so");
    println!("only the onset decides. A slow tune drift never sags the");
    println!("voltage, evades the sag detector entirely, and is policy-");
    println!("independent — the case for a dedicated tune monitor.");
    let path = write_csv("ablation_cavity_failure.csv", &csv);
    println!("\ndata -> {}", path.display());
}
