//! Ablation A2 — the period-length detector's averaging window.
//!
//! "The measured frequency is averaged over the past four periods to reduce
//! jitter" (Section III-B). Sweeps the window over 1/2/4/8/16 periods with
//! ADC noise applied and reports the RMS error of the period estimate and
//! the lock delay (the kernel waits for a full window before initialising).

use cil_bench::{CsvWriter, Table};
use cil_dsp::period::PeriodLengthDetector;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

fn gauss<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn measure(window: usize, noise_rms: f64, seed: u64) -> (f64, usize) {
    let fs = 250e6;
    let f = 800e3;
    let true_period = fs / f;
    let mut det = PeriodLengthDetector::new(window, 0.1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut errs = Vec::new();
    let mut lock_samples = None;
    for i in 0..2_000_000 {
        let v = (std::f64::consts::TAU * f * i as f64 / fs).sin() + noise_rms * gauss(&mut rng);
        if let Some(p) = det.push(v) {
            if det.warmed_up() {
                if lock_samples.is_none() {
                    lock_samples = Some(i);
                }
                errs.push(p - true_period);
            }
        }
    }
    let rms = (errs.iter().map(|e| e * e).sum::<f64>() / errs.len() as f64).sqrt();
    (rms, lock_samples.unwrap_or(usize::MAX))
}

fn main() {
    println!("Ablation A2 — period-average window vs frequency-estimate jitter");
    println!("(800 kHz reference, 250 MS/s, 2% RMS additive noise)\n");
    let mut t = Table::new(&[
        "window [periods]",
        "period RMS error [samples]",
        "freq RMS error [Hz]",
        "lock delay [us]",
    ]);
    let mut csv = CsvWriter::new(&[
        "window",
        "period_rms_samples",
        "freq_rms_hz",
        "lock_delay_us",
    ]);
    for window in [1usize, 2, 4, 8, 16] {
        let (rms, lock) = measure(window, 0.02, 42);
        // df/f = -dp/p -> df = f * rms/period.
        let df = 800e3 * rms / 312.5;
        let label = if window == 4 {
            "4 (paper)".to_string()
        } else {
            window.to_string()
        };
        t.row(&[
            label,
            format!("{rms:.4}"),
            format!("{df:.1}"),
            format!("{:.1}", lock as f64 / 250.0),
        ]);
        csv.row(&[
            window.to_string(),
            format!("{rms:.5}"),
            format!("{df:.2}"),
            format!("{:.2}", lock as f64 / 250.0),
        ]);
    }
    t.print();
    println!("\ntrade-off: wider windows cut jitter ~ 1/sqrt(N) but delay the");
    println!("initial lock and the response to ramp-driven frequency changes.");
    let path = csv.write("ablation_period_avg.csv");
    println!("\ndata -> {}", path.display());
}
