//! §IV-B schedule-length table ("Table S1" in DESIGN.md).
//!
//! Reproduces the paper's numbers methodologically: generate the beam
//! kernel for B ∈ {1, 4, 8} bunches, with and without the factor-2 loop
//! pipelining, schedule it with the resource-constrained list scheduler on
//! a 5×5 CGRA, and report ticks + the maximum real-time revolution
//! frequency at the 111 MHz CGRA clock.
//!
//! Paper values: 8 bunches 128 (sequential) / 111 (pipelined); 4 bunches
//! 99; 1 bunch 93; f_max ≈ 867 kHz / 1.0 MHz / 1.12 MHz / 1.19 MHz.

use cil_bench::{write_csv, Table};
use cil_cgra::context::ContextMemories;
use cil_cgra::grid::GridConfig;
use cil_cgra::kernels::{schedule_table, KernelParams};
use cil_core::scenario::MdeScenario;
use std::fmt::Write as _;

fn main() {
    let scenario = MdeScenario::nov24_2023();
    let params: KernelParams = scenario.kernel_params().unwrap();
    let f_clk = 111e6;
    let grid = GridConfig::mesh_5x5();

    // Paper rows: (bunches, pipelined, paper ticks, paper f_max MHz).
    let rows: &[(usize, bool, u32, f64)] = &[
        (8, false, 128, 0.867),
        (8, true, 111, 1.00),
        (4, true, 99, 1.12),
        (1, true, 93, 1.19),
    ];
    let configs: Vec<(usize, bool)> = rows.iter().map(|r| (r.0, r.1)).collect();
    let ours = schedule_table(&params, grid, f_clk, &configs)
        .unwrap_or_else(|e| panic!("schedule table failed: {e}"));

    let mut t = Table::new(&[
        "bunches",
        "pipelined",
        "ticks (paper)",
        "ticks (ours)",
        "f_max MHz (paper)",
        "f_max MHz (ours)",
        "context bytes",
    ]);
    let mut csv = String::from(
        "bunches,pipelined,ticks_paper,ticks_ours,fmax_mhz_paper,fmax_mhz_ours,context_bytes\n",
    );
    for ((bunches, pipelined, p_ticks, p_fmax), (row, schedule)) in rows.iter().zip(&ours) {
        // The context-memory image is the artifact swapped into the
        // bitstream ("model changes are available in seconds").
        let kernel = cil_cgra::kernels::build_beam_kernel(&params, *bunches, *pipelined);
        let ctx = ContextMemories::from_schedule(&kernel.kernel.dfg, schedule);
        let bytes = ctx.pack().len();
        t.row(&[
            bunches.to_string(),
            pipelined.to_string(),
            p_ticks.to_string(),
            row.ticks.to_string(),
            format!("{p_fmax:.3}"),
            format!("{:.3}", row.max_f_rev / 1e6),
            bytes.to_string(),
        ]);
        writeln!(
            csv,
            "{},{},{},{},{},{:.4},{}",
            bunches,
            pipelined,
            p_ticks,
            row.ticks,
            p_fmax,
            row.max_f_rev / 1e6,
            bytes
        )
        .unwrap();
    }

    println!(
        "§IV-B — beam-kernel schedule lengths on a 5x5 CGRA @ {:.0} MHz\n",
        f_clk / 1e6
    );
    t.print();
    println!();
    println!("shape checks (the claims the paper draws from this data):");
    let ticks: Vec<u32> = ours.iter().map(|(r, _)| r.ticks).collect();
    println!(
        "  pipelining shortens the 8-bunch schedule:   {} ({} -> {})",
        ticks[1] < ticks[0],
        ticks[0],
        ticks[1]
    );
    println!(
        "  fewer bunches never schedule longer:        {}",
        ticks[3] <= ticks[2] && ticks[2] <= ticks[1]
    );
    println!(
        "  pipelined single-bunch covers 800 kHz MDE:  {} ({:.3} MHz)",
        ours[3].0.max_f_rev > 800e3,
        ours[3].0.max_f_rev / 1e6
    );
    let path = write_csv("table_schedule.csv", &csv);
    println!("\ndata -> {}", path.display());
}
