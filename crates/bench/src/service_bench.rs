//! Standing multi-session service benchmark (aggregate revolutions per
//! second and dispatch latency).
//!
//! Measures the [`SessionMux`] hosting a skewed fleet — every tenth
//! session runs the full benchmark length, the rest one tenth of it, so
//! the run queues see the hot/cold mix a real fleet produces — across a
//! sweep of worker counts, against the single-loop `map_batched` rate
//! from [`loop_bench`](crate::loop_bench) as the per-core baseline. The
//! `bench_service` binary prints the table and writes
//! `results/BENCH_service.json`; the release-only `service_guard` test
//! pins the 1k-session aggregate at ≥0.5x the per-core baseline (and the
//! 1→8 worker scaling at ≥2.5x on machines with ≥8 cores) so mux overhead
//! cannot silently regress.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use crate::loop_bench::{bench_scenario, measure_case, standard_cases};
use cil_core::hil::EngineKind;
use cil_core::{MuxConfig, SessionMux, SessionSpec};

/// Dispatch-latency histogram the mux exports (p99 is read from it).
pub const DISPATCH_HISTOGRAM: &str = "cil_mux_dispatch_latency_wall_seconds";

/// Fraction of the fleet that runs the full benchmark length; the rest
/// run [`COLD_FRACTION`] of it.
pub const HOT_EVERY: usize = 10;

/// Length of a cold session relative to a hot one.
pub const COLD_FRACTION: u64 = 10;

/// One measured worker count of the standing service benchmark.
#[derive(Debug, Clone)]
pub struct ServiceBenchRow {
    /// Mux worker threads.
    pub workers: usize,
    /// Sessions in the fleet.
    pub sessions: usize,
    /// Trace rows produced across the whole fleet.
    pub total_rows: u64,
    /// Wall clock from first create to last join, seconds.
    pub wall_s: f64,
    /// `total_rows / wall_s` — the aggregate fleet throughput.
    pub revs_per_sec: f64,
    /// p99 queue→worker dispatch latency, seconds.
    pub p99_dispatch_s: f64,
}

/// The skewed fleet: session `i` runs `hot_revolutions` rows when
/// `i % HOT_EVERY == 0`, else `hot_revolutions / COLD_FRACTION`.
fn session_rows(i: usize, hot_revolutions: u64) -> u64 {
    if i.is_multiple_of(HOT_EVERY) {
        hot_revolutions
    } else {
        (hot_revolutions / COLD_FRACTION).max(1)
    }
}

/// Run one fleet on one (fresh) mux and measure it end to end. Sessions
/// are created and armed in one burst (the worst case for the run
/// queues), then joined in creation order.
fn measure_fleet_once(workers: usize, sessions: usize, hot_revolutions: u64) -> ServiceBenchRow {
    let mux = SessionMux::new(MuxConfig {
        workers,
        ..MuxConfig::default()
    })
    .expect("mux config is valid");
    let t0 = Instant::now();
    let handles: Vec<_> = (0..sessions)
        .map(|i| {
            let s = bench_scenario(session_rows(i, hot_revolutions));
            let h = mux
                .create(SessionSpec::new(s, EngineKind::Map))
                .expect("session creates");
            h.run_to_end().expect("session arms");
            h
        })
        .collect();
    let mut total_rows = 0u64;
    for h in &handles {
        let trace = h.join().expect("session joins");
        assert!(trace.outcome.survived(), "beam lost mid-bench");
        total_rows += trace.times.len() as u64;
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let p99_dispatch_s = mux
        .telemetry()
        .snapshot()
        .histogram(DISPATCH_HISTOGRAM)
        .and_then(|h| h.quantile(0.99))
        .unwrap_or(0.0);
    ServiceBenchRow {
        workers,
        sessions,
        total_rows,
        wall_s,
        revs_per_sec: total_rows as f64 / wall_s,
        p99_dispatch_s,
    }
}

/// Best-of-`runs` fleet measurement (each run on a fresh mux) — the same
/// quiet-machine convention [`measure_case`] uses for the single-loop
/// baseline, so the guard's ratio compares two best-of numbers instead of
/// one noisy sample against one best.
pub fn measure_fleet(
    workers: usize,
    sessions: usize,
    hot_revolutions: u64,
    runs: usize,
) -> ServiceBenchRow {
    let mut best: Option<ServiceBenchRow> = None;
    for _ in 0..runs.max(1) {
        let row = measure_fleet_once(workers, sessions, hot_revolutions);
        if best.as_ref().is_none_or(|b| row.wall_s < b.wall_s) {
            best = Some(row);
        }
    }
    best.expect("at least one run")
}

/// The single-loop `map_batched` rate (revolutions per second) from the
/// loop benchmark — the per-core baseline the fleet is scored against.
pub fn baseline_map_rate(revolutions: u64, runs: usize) -> f64 {
    let s = bench_scenario(revolutions);
    let case = standard_cases()
        .into_iter()
        .find(|c| c.label == "map_batched")
        .expect("map_batched case exists");
    measure_case(&s, case, runs).revs_per_sec
}

/// Run the worker-count sweep (first count doubles as warmup: one untimed
/// small fleet pages in code and fills the kernel cache).
pub fn run_service_bench(
    worker_counts: &[usize],
    sessions: usize,
    hot_revolutions: u64,
    runs: usize,
) -> Vec<ServiceBenchRow> {
    let _ = measure_fleet_once(worker_counts[0], HOT_EVERY, hot_revolutions.min(512));
    worker_counts
        .iter()
        .map(|&w| measure_fleet(w, sessions, hot_revolutions, runs))
        .collect()
}

/// Aggregate-throughput ratio between two measured worker counts.
pub fn scaling(rows: &[ServiceBenchRow], num_workers: usize, den_workers: usize) -> f64 {
    let find = |w: usize| {
        rows.iter()
            .find(|r| r.workers == w)
            .unwrap_or_else(|| panic!("no row for {w} workers"))
            .revs_per_sec
    };
    find(num_workers) / find(den_workers)
}

/// Write `results/BENCH_service.json` (repo-root `results/`, independent
/// of the working directory); returns the path written.
pub fn write_service_json(
    hot_revolutions: u64,
    rows: &[ServiceBenchRow],
    baseline_revs_per_sec: f64,
    bound: f64,
) -> PathBuf {
    let dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"));
    std::fs::create_dir_all(&dir).unwrap();
    let mut cases = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            cases.push(',');
        }
        write!(
            cases,
            "{{\"workers\":{},\"sessions\":{},\"total_rows\":{},\"wall_s\":{},\
             \"revs_per_sec\":{},\"p99_dispatch_s\":{}}}",
            r.workers, r.sessions, r.total_rows, r.wall_s, r.revs_per_sec, r.p99_dispatch_s
        )
        .unwrap();
    }
    let path = dir.join("BENCH_service.json");
    std::fs::write(
        &path,
        format!(
            "{{\"bench\":\"session_mux_service\",\"hot_revolutions\":{hot_revolutions},\
             \"hot_every\":{HOT_EVERY},\"cold_fraction\":{COLD_FRACTION},\
             \"baseline_map_batched_revs_per_sec\":{baseline_revs_per_sec},\
             \"cases\":[{cases}],\
             \"bound_vs_baseline\":{bound}}}\n"
        ),
    )
    .unwrap();
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_is_ninety_ten() {
        let rows: Vec<u64> = (0..100).map(|i| session_rows(i, 1000)).collect();
        assert_eq!(rows.iter().filter(|&&r| r == 1000).count(), 10);
        assert_eq!(rows.iter().filter(|&&r| r == 100).count(), 90);
    }

    #[test]
    fn scaling_reads_the_named_rows() {
        let mk = |workers, revs_per_sec| ServiceBenchRow {
            workers,
            sessions: 1,
            total_rows: 1,
            wall_s: 1.0,
            revs_per_sec,
            p99_dispatch_s: 0.0,
        };
        let rows = vec![mk(1, 10.0), mk(8, 35.0)];
        assert!((scaling(&rows, 8, 1) - 3.5).abs() < 1e-12);
    }

    /// Tiny smoke fleet (debug build, so no timing claims): the mux hosts
    /// a skewed mix end to end and the dispatch histogram fills.
    #[test]
    fn smoke_fleet_completes_and_measures() {
        let row = measure_fleet(2, 20, 400, 1);
        assert_eq!(row.sessions, 20);
        // 2 hot sessions x ~400 rows + 18 cold x ~40 rows (the harness may
        // land a row either side of the scheduled end).
        let expected = 2 * 400 + 18 * 40;
        assert!(
            (row.total_rows as i64 - expected).abs() <= 20,
            "total rows {} far from expected {expected}",
            row.total_rows
        );
        assert!(row.revs_per_sec > 0.0);
        assert!(row.p99_dispatch_s > 0.0, "dispatch histogram must fill");
    }
}
