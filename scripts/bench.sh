#!/usr/bin/env bash
# Standing performance runs — kept out of tier1.sh so the gate stays fast.
# Run from the repo root (CI runs this after the tier-1 gate):
#   scripts/bench.sh                 # default: 10000 revolutions, best of 5
#   scripts/bench.sh --revolutions 50000 --runs 9
#
# Produces results/BENCH_loop.json (revolutions/sec for every engine
# fidelity × execution mode: micro-op plan vs legacy DFG walk, batched
# step_block vs per-turn). The 1.5x plan+batched-vs-walk-per-turn bound is
# separately *enforced* by the release-only loop_guard test.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p cil-bench --bin bench_loop -- "$@"
