#!/usr/bin/env bash
# Standing performance runs — kept out of tier1.sh so the gate stays fast.
# Run from the repo root (CI runs this after the tier-1 gate):
#   scripts/bench.sh                 # default: 10000 revolutions, best of 5
#   scripts/bench.sh --revolutions 50000 --runs 9
#
# Produces results/BENCH_loop.json (revolutions/sec for every engine
# fidelity × execution mode: micro-op plan vs legacy DFG walk, batched
# step_block vs per-turn) and results/BENCH_reftrack.json (the RefTrack
# kernel backend × ensemble-size matrix plus the closed-loop engine pair).
# The bounds are separately *enforced* by the release-only loop_guard and
# reftrack_guard tests.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p cil-bench --bin bench_loop -- "$@"
cargo run --release -p cil-bench --bin bench_reftrack -- "$@"
