#!/usr/bin/env python3
"""Plot the controller-stability phase diagram from results/phase_diagram.csv.

The CSV is produced by the campaign runner:

    cargo run --release -p cil-bench --bin campaign_runner

Each row is one campaign point: (gain, recursion, jump_amplitude_deg) plus
the scored response (first_peak_ratio, residual_ratio, damping_time_s).
This script renders one heat map per jump amplitude slice: gain on the x
axis, recursion on the y axis, colour = residual ratio (~0 damped, ~1
undamped/ringing, blank = quarantined point).

Only needs the standard library + matplotlib; degrades to a text summary
when matplotlib is unavailable (the CSV itself is the artifact of record).
"""

import csv
import sys
from collections import defaultdict
from pathlib import Path

CSV_PATH = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("results/phase_diagram.csv")
OUT_DIR = Path(sys.argv[2]) if len(sys.argv) > 2 else Path("results")


def load(path):
    rows = []
    with path.open(newline="") as f:
        for row in csv.DictReader(f):
            rows.append(
                {
                    "gain": float(row["gain"]),
                    "recursion": float(row["recursion"]),
                    "amp": float(row["jump_amplitude_deg"]),
                    "residual": float(row["residual_ratio"])
                    if row["residual_ratio"]
                    else None,
                }
            )
    return rows


def text_summary(rows):
    total = len(rows)
    quarantined = sum(1 for r in rows if r["residual"] is None)
    damped = sum(1 for r in rows if r["residual"] is not None and r["residual"] < 0.3)
    print(f"{total} points: {damped} damped (residual < 0.3), "
          f"{total - damped - quarantined} ringing/unstable, {quarantined} quarantined")


def main():
    if not CSV_PATH.exists():
        sys.exit(f"{CSV_PATH} not found — run the campaign_runner bench bin first")
    rows = load(CSV_PATH)
    text_summary(rows)

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available — text summary only")
        return

    by_amp = defaultdict(list)
    for r in rows:
        by_amp[r["amp"]].append(r)
    amps = sorted(by_amp)
    # At most 6 slices across the amplitude range, endpoints included.
    if len(amps) > 6:
        idx = [round(i * (len(amps) - 1) / 5) for i in range(6)]
        amps = [amps[i] for i in sorted(set(idx))]

    fig, axes = plt.subplots(1, len(amps), figsize=(3.2 * len(amps), 3.4),
                             sharey=True, squeeze=False)
    for ax, amp in zip(axes[0], amps):
        slice_rows = by_amp[amp]
        gains = sorted({r["gain"] for r in slice_rows})
        recs = sorted({r["recursion"] for r in slice_rows})
        gi = {g: i for i, g in enumerate(gains)}
        ri = {r: i for i, r in enumerate(recs)}
        grid = [[float("nan")] * len(gains) for _ in recs]
        for r in slice_rows:
            v = r["residual"]
            grid[ri[r["recursion"]]][gi[r["gain"]]] = float("nan") if v is None else v
        im = ax.imshow(
            grid,
            origin="lower",
            aspect="auto",
            vmin=0.0,
            vmax=1.5,
            cmap="RdYlGn_r",
            extent=[gains[0], gains[-1], recs[0], recs[-1]],
        )
        ax.set_title(f"jump {amp:g}°")
        ax.set_xlabel("gain")
    axes[0][0].set_ylabel("recursion factor")
    fig.colorbar(im, ax=axes[0].tolist(), label="residual ratio (0 = damped)")
    out = OUT_DIR / "phase_diagram.png"
    fig.savefig(out, dpi=150, bbox_inches="tight")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
