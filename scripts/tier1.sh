#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, release build, full test suite.
# Run from the repo root; CI runs exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release --workspace --all-targets
cargo test -q --workspace
