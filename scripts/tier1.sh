#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, release build, full test suite.
# Run from the repo root; CI runs exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
# Cross-reference lint: DESIGN.md section numbers cited from other docs
# and crate docs must match the heading they name (several drifted in the
# PR 9 renumbering). Each line pins one citation to its live heading.
ref() { # $1 section number, $2 heading substring, $3 citing file, $4 citation pattern
  grep -q "^## $1\. .*$2" DESIGN.md && grep -q "$4" "$3" || {
    echo "stale DESIGN.md cross-reference: §$1 ($2) cited from $3" >&2
    exit 1
  }
}
ref 11 "SessionMux" README.md 'DESIGN.md §11'
ref 13 "Experiment index" EXPERIMENTS.md 'DESIGN.md §13 for the experiment index'
ref 17 "Known deviations" EXPERIMENTS.md 'DESIGN.md §17'
ref 17 "Known deviations" crates/cgra/src/isa.rs 'see DESIGN.md §17'
ref 13 "Experiment index" crates/bench/src/lib.rs 'see DESIGN.md §13'
cargo build --release --workspace --all-targets
# The fault/supervision crates must stay warning-free even where clippy has
# no lint (e.g. future rustc warnings on new code paths).
RUSTFLAGS="-D warnings" cargo build -q -p cil-core -p cil-dsp -p cil-cgra
# The strict-faults gate (supervisor recoveries become panics) must keep
# compiling; it is a debugging configuration, not part of the test run.
cargo build -q -p cil-core --features strict-faults
cargo test -q --workspace
# Headline robustness claims: storm recovery, deterministic replay,
# graceful engine degradation.
cargo test -q --test fault_injection
# Telemetry golden traces, merge proptest and exports; the release pass
# also runs the #[ignore]d throughput guard (telemetry-on <= 1.10x off)
# and writes results/BENCH_telemetry.json.
cargo test -q --test telemetry
cargo test --release -q --test telemetry -- --include-ignored
# Crash-recovery chaos suite: kill-and-resume bit-identity (including
# mid-storm and across a fidelity demotion), corrupted-snapshot fallback,
# decoder fuzzing. The release pass additionally runs the checkpoint
# overhead guard (checkpointing-on <= 1.25x off at the default cadence;
# ~1.08x measured on a quiet machine)
# and writes results/BENCH_checkpoint.json.
cargo test -q --test checkpoint_recovery
cargo test --release -q --test checkpoint_recovery
# Event-scheduled core: block-size invariance of traces, telemetry and
# checkpoint bytes under coprime cadences, same-tick ordering proptest,
# observer cadence and event-tally accounting.
cargo test -q --test event_core
cargo test --release -q --test event_core
# Campaign chaos suite: proptest kill-and-resume byte-identical aggregate
# CSV, quarantine determinism across worker counts, retry-then-succeed
# accounting, torn-WAL-tail recovery, foreign-header rejection.
cargo test -q --test campaign
cargo test --release -q --test campaign
# Cavity-failure chaos suite: compensation strictly extends survival,
# block-size and kill-and-resume bit-identity through the quench window,
# zero-amplitude == fault-free, cross-fidelity ladder agreement.
cargo test -q --test cavity_failure
cargo test --release -q --test cavity_failure
# Closed-loop throughput guard: plan+batched CGRA must stay >= 1.5x the
# legacy per-turn DFG walk (release-only; debug timings are meaningless).
# Writes results/BENCH_loop.json. Full matrix via scripts/bench.sh.
cargo test --release -q -p cil-bench --test loop_guard -- --include-ignored
# Campaign-shell overhead guard: Campaign over identical work must stay
# <= 1.15x a raw parallel_sweep_with_merge (release-only).
cargo test --release -q -p cil-bench --test campaign_guard -- --include-ignored
# RefTrack wide-lane kernel differential suite: poly-vs-libm ulp bound,
# backend × thread × chunk × block bit-identity proptests, checkpoint
# kill-and-resume through the intra-step parallel path.
cargo test -q --test reftrack_kernel
cargo test --release -q --test reftrack_kernel
# RefTrack kernel throughput guard: polynomial Auto >= 3x host libm on the
# kernel-dominated case and >= 1.5x end-to-end through the closed loop
# (release-only). Writes results/BENCH_reftrack.json.
cargo test --release -q -p cil-bench --test reftrack_guard -- --include-ignored
# SessionMux suite: random pause/evict/restore/steal interleavings across
# worker counts {1,4,8} and slice budgets stay bit-identical to an
# uninterrupted run_supervised (trace + audit events + deterministic
# telemetry), including kill-and-resume of snapshot bytes in a fresh mux.
cargo test -q --test session_mux
cargo test --release -q --test session_mux
# bench_service smoke: a small fleet end to end through the bin (table +
# JSON plumbing; no timing claims at this size). Runs before the guard so
# the guard's full-size BENCH_service.json is the one left on disk.
cargo run -q --release -p cil-bench --bin bench_service -- \
  --sessions 40 --revolutions 300 --workers 1,2 > /dev/null
# SessionMux service guard: 1000-session skewed-fleet aggregate >= 0.5x
# the single-loop map_batched rate on one worker, and >= 2.5x 1->8 worker
# scaling on machines with >= 8 cores (release-only). Writes
# results/BENCH_service.json.
cargo test --release -q -p cil-bench --test service_guard -- --include-ignored
# std::simd backend feature leg: the nightly-gated backend must build and
# stay bit-identical to the stable backends (RUSTC_BOOTSTRAP unlocks the
# portable_simd feature gate on the stable toolchain).
RUSTC_BOOTSTRAP=1 cargo test -q -p cil-reftrack --features simd
RUSTC_BOOTSTRAP=1 cargo test -q --features simd --test reftrack_kernel
