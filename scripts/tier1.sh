#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, release build, full test suite.
# Run from the repo root; CI runs exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release --workspace --all-targets
# The fault/supervision crates must stay warning-free even where clippy has
# no lint (e.g. future rustc warnings on new code paths).
RUSTFLAGS="-D warnings" cargo build -q -p cil-core -p cil-dsp -p cil-cgra
# The strict-faults gate (supervisor recoveries become panics) must keep
# compiling; it is a debugging configuration, not part of the test run.
cargo build -q -p cil-core --features strict-faults
cargo test -q --workspace
# Headline robustness claims: storm recovery, deterministic replay,
# graceful engine degradation.
cargo test -q --test fault_injection
# Telemetry golden traces, merge proptest and exports; the release pass
# also runs the #[ignore]d throughput guard (telemetry-on <= 1.10x off)
# and writes results/BENCH_telemetry.json.
cargo test -q --test telemetry
cargo test --release -q --test telemetry -- --include-ignored
# Crash-recovery chaos suite: kill-and-resume bit-identity (including
# mid-storm and across a fidelity demotion), corrupted-snapshot fallback,
# decoder fuzzing. The release pass additionally runs the checkpoint
# overhead guard (checkpointing-on <= 1.25x off at the default cadence;
# ~1.08x measured on a quiet machine)
# and writes results/BENCH_checkpoint.json.
cargo test -q --test checkpoint_recovery
cargo test --release -q --test checkpoint_recovery
# Event-scheduled core: block-size invariance of traces, telemetry and
# checkpoint bytes under coprime cadences, same-tick ordering proptest,
# observer cadence and event-tally accounting.
cargo test -q --test event_core
cargo test --release -q --test event_core
# Campaign chaos suite: proptest kill-and-resume byte-identical aggregate
# CSV, quarantine determinism across worker counts, retry-then-succeed
# accounting, torn-WAL-tail recovery, foreign-header rejection.
cargo test -q --test campaign
cargo test --release -q --test campaign
# Closed-loop throughput guard: plan+batched CGRA must stay >= 1.5x the
# legacy per-turn DFG walk (release-only; debug timings are meaningless).
# Writes results/BENCH_loop.json. Full matrix via scripts/bench.sh.
cargo test --release -q -p cil-bench --test loop_guard -- --include-ignored
# Campaign-shell overhead guard: Campaign over identical work must stay
# <= 1.15x a raw parallel_sweep_with_merge (release-only).
cargo test --release -q -p cil-bench --test campaign_guard -- --include-ignored
