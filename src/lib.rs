//! # cavity-in-the-loop
//!
//! A from-scratch Rust reproduction of *"Cavity in the Loop"* (SC 2024): a
//! CGRA-based hardware-in-the-loop environment that simulates the
//! longitudinal beam dynamics of the GSI SIS18 synchrotron in real time, so
//! that the accelerator's beam-phase control system can be developed and
//! tested without beam time.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`physics`] (`cil-physics`) — relativistic kinematics, the recursive
//!   two-particle tracking map (Eqs. 1–6 of the paper), synchrotron-
//!   frequency theory, ramps, matched distributions, mode diagnostics;
//! * [`dsp`] (`cil-dsp`) — DDS, ring buffers, zero-crossing / period
//!   detectors, ADC/DAC models, FIR/IIR filters, phase detection, spectra;
//! * [`cgra`] (`cil-cgra`) — the CGRA overlay: C-subset frontend, SCAR
//!   dataflow graphs, resource-constrained list scheduler with factor-2
//!   loop pipelining, context memories, cycle-accurate executor;
//! * [`reftrack`] (`cil-reftrack`) — the parallel multi-macro-particle
//!   tracker standing in for the real beam (Fig. 5b);
//! * the HIL framework itself (`cil-core`), whose modules are re-exported
//!   at the top level: [`framework`], [`control`], [`engine`], [`harness`],
//!   [`hil`], [`scenario`], [`signalgen`], [`jitter`], [`clock`],
//!   [`fault`], [`checkpoint`], [`campaign`], [`error`], [`telemetry`],
//!   [`trace`].
//!
//! ## Quick start
//!
//! ```
//! use cavity_in_the_loop::hil::{EngineKind, TurnLevelLoop};
//! use cavity_in_the_loop::scenario::MdeScenario;
//!
//! let mut scenario = MdeScenario::nov24_2023();
//! scenario.duration_s = 0.02; // keep the doctest fast
//! scenario.bunches = 1;
//! let result = TurnLevelLoop::new(scenario, EngineKind::Map).run(true).unwrap();
//! assert!(result.phase_deg.len() > 10_000);
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! binaries that regenerate every figure and table of the paper.

pub use cil_cgra as cgra;
pub use cil_dsp as dsp;
pub use cil_physics as physics;
pub use cil_reftrack as reftrack;

pub use cil_core::campaign;
pub use cil_core::checkpoint;
pub use cil_core::clock;
pub use cil_core::control;
pub use cil_core::engine;
pub use cil_core::error;
pub use cil_core::fault;
pub use cil_core::framework;
pub use cil_core::harness;
pub use cil_core::hil;
pub use cil_core::jitter;
pub use cil_core::multibunch;
pub use cil_core::ramploop;
pub use cil_core::recorder;
pub use cil_core::scenario;
pub use cil_core::signalgen;
pub use cil_core::sweep;
pub use cil_core::telemetry;
pub use cil_core::trace;
