//! The CGRA toolchain end to end on a *custom* kernel: write C, compile to
//! a SCAR dataflow graph, schedule on different grids, generate context
//! memories, and execute cycle-accurately — the "model changes are
//! available on the experimental setup in seconds" workflow of the paper.
//!
//! ```text
//! cargo run --release --example cgra_playground
//! ```

use cavity_in_the_loop::cgra::context::ContextMemories;
use cavity_in_the_loop::cgra::exec::{CgraExecutor, MapBus};
use cavity_in_the_loop::cgra::frontend::compile;
use cavity_in_the_loop::cgra::grid::GridConfig;
use cavity_in_the_loop::cgra::sched::ListScheduler;
use std::time::Instant;

/// A little IIR filter kernel with loop-carried state — something a control
/// engineer might actually drop onto the CGRA.
const SOURCE: &str = r#"
// one-pole smoother + peak tracker over a sensor stream
static float smooth = 0.0f;
static float peak = 0.0f;

for (;;) {
    float x = read_sensor(0, 0.0f);
    smooth = smooth * 0.9f + x * 0.1f;
    peak = fmaxf(peak * 0.999f, fabsf(x));
    float snr = smooth / sqrtf(peak * peak + 1.0e-9f);
    write_actuator(0, smooth);
    write_actuator(1, snr);
}
"#;

fn main() {
    println!("compiling the kernel source:\n{SOURCE}");
    let t0 = Instant::now();
    let kernel = compile(SOURCE).expect("kernel compiles");
    println!(
        "-> SCAR DFG: {} nodes, {} loop-carried registers ({} us)\n",
        kernel.dfg.len(),
        kernel.dfg.reg_count(),
        t0.elapsed().as_micros()
    );
    println!("op histogram:");
    for (op, n) in kernel.dfg.op_histogram() {
        println!("  {op:<16} {n}");
    }

    println!("\nscheduling on different grids:");
    let (_, cp) = kernel.dfg.critical_path();
    println!("  critical path (lower bound): {cp} ticks");
    let mut chosen = None;
    for size in [2u16, 3, 5] {
        let grid = GridConfig::mesh(size, size);
        let t0 = Instant::now();
        let schedule = ListScheduler::new(grid).schedule(&kernel.dfg);
        schedule.validate(&kernel.dfg).expect("valid");
        println!(
            "  {size}x{size}: {} ticks, utilisation {:.0}%, scheduled in {} us",
            schedule.makespan,
            schedule.utilisation() * 100.0,
            t0.elapsed().as_micros()
        );
        if size == 3 {
            chosen = Some(schedule);
        }
    }
    let schedule = chosen.unwrap();

    // The reconfiguration artifact.
    let ctx = ContextMemories::from_schedule(&kernel.dfg, &schedule);
    let image = ctx.pack();
    println!("\ncontext-memory image: {} bytes (patched into the bitstream\nwithout re-synthesis — the paper's seconds-not-hours turnaround)", image.len());

    // Execute against a synthetic sensor.
    let mut ex = CgraExecutor::new(kernel.dfg.clone(), schedule);
    for &(r, v) in &kernel.reg_inits {
        ex.set_reg(r, v);
    }
    let mut bus = MapBus::default();
    println!("\nrunning 10 iterations against a noisy sensor:");
    for i in 0..10 {
        let x = if i % 3 == 0 { 2.0 } else { 0.5 };
        bus.set_sensor(0, x);
        bus.writes.clear();
        ex.run_iteration(&mut bus, &[]);
        let smooth = bus.writes.iter().find(|(p, _)| *p == 0).unwrap().1;
        let snr = bus.writes.iter().find(|(p, _)| *p == 1).unwrap().1;
        println!("  in {x:>4}: smooth = {smooth:.4}, snr = {snr:.4}");
    }
    println!(
        "\none iteration = {} CGRA ticks -> {:.2} us at the 111 MHz CGRA clock",
        ex.ticks_per_iteration(),
        ex.iteration_seconds(111e6) * 1e6
    );
}
