//! Fleet execution demo: host a mixed fleet of closed-loop sessions on a
//! `SessionMux`, pause one at a row target, evict it to checkpoint bytes,
//! migrate its snapshot into a second mux with a different worker count,
//! and show every session — sliced, stolen, evicted, migrated — lands
//! bit-identical to an uninterrupted `run_supervised` call.
//!
//! ```text
//! cargo run --release --example session_fleet
//! ```

use cil_core::harness::{LoopHarness, LoopTrace};
use cil_core::hil::EngineKind;
use cil_core::{LoopSupervisor, MdeScenario, MuxConfig, SessionMux, SessionSpec};

fn main() {
    // The Nov 24 2023 machine experiment, shortened so the demo runs in
    // well under a second even in a debug build.
    let mut s = MdeScenario::nov24_2023();
    s.duration_s = 0.008;
    s.bunches = 1;

    // ---- the yardstick: one uninterrupted supervised run ------------------
    let mut harness = LoopHarness::for_scenario(&s, true);
    let mut sup = LoopSupervisor::for_scenario(&s);
    let reference = harness
        .run_supervised(&s, EngineKind::Map, s.duration_s, &mut sup)
        .unwrap();
    println!("reference   : {}", describe(&reference));

    // ---- a fleet on the mux ------------------------------------------------
    // Small slices force many dispatch/requeue cycles per session, so the
    // work-stealing and arena-reuse machinery actually exercises.
    let mux = SessionMux::new(MuxConfig {
        workers: 4,
        slice_rows: 256,
        ..MuxConfig::default()
    })
    .unwrap();
    let fleet: Vec<_> = (0..8)
        .map(|_| {
            let h = mux
                .create(SessionSpec::new(s.clone(), EngineKind::Map))
                .unwrap();
            h.run_to_end().unwrap();
            h
        })
        .collect();
    for (i, h) in fleet.iter().enumerate() {
        let trace = h.join().unwrap();
        assert_traces_equal(&trace, &reference);
        if i == 0 {
            println!("fleet[0]    : {} (bit-identical)", describe(&trace));
        }
    }
    println!("fleet       : 8/8 sessions bit-identical to the reference");

    // ---- pause / evict / migrate ------------------------------------------
    // Run a fresh session partway, park it, evict it to CILCKPT bytes, kill
    // it, and rehydrate the bytes in a *different* mux (other worker
    // count, fresh queues). The completed run must still match.
    let h = mux
        .create(SessionSpec::new(s.clone(), EngineKind::Map))
        .unwrap();
    let halfway = reference.times.len() as u64 / 2;
    h.step_to(halfway).unwrap();
    let parked = h.wait().unwrap();
    assert!(h.evict().unwrap(), "a parked session evicts");
    let bytes = h.snapshot().unwrap();
    h.kill().unwrap();
    println!(
        "evicted     : parked at row {} -> {} CILCKPT bytes, session killed",
        parked.rows,
        bytes.len()
    );

    let mux2 = SessionMux::new(MuxConfig {
        workers: 2,
        slice_rows: 512,
        ..MuxConfig::default()
    })
    .unwrap();
    let h2 = mux2
        .create_from_snapshot(SessionSpec::new(s.clone(), EngineKind::Map), bytes)
        .unwrap();
    h2.run_to_end().unwrap();
    let migrated = h2.join().unwrap();
    assert_traces_equal(&migrated, &reference);
    println!("migrated    : {} (bit-identical)", describe(&migrated));

    // ---- fleet telemetry ---------------------------------------------------
    let snap = mux.telemetry().snapshot();
    println!(
        "mux fleet   : {} finished, {} dispatches, {} steals, {} evictions",
        snap.counter("cil_mux_sessions_finished_total").unwrap_or(0),
        snap.counter("cil_mux_dispatches_total").unwrap_or(0),
        snap.counter("cil_mux_steals_total").unwrap_or(0),
        snap.counter("cil_mux_evictions_total").unwrap_or(0),
    );
}

fn describe(t: &LoopTrace) -> String {
    format!(
        "{} rows, {} jump edges, survived = {}",
        t.times.len(),
        t.jump_times.len(),
        t.outcome.survived()
    )
}

fn assert_traces_equal(a: &LoopTrace, b: &LoopTrace) {
    assert_eq!(a.times, b.times, "row times differ");
    assert_eq!(a.bunch_phase_deg, b.bunch_phase_deg, "bunch rows differ");
    assert_eq!(a.control_hz, b.control_hz, "actuation differs");
    assert_eq!(a.events, b.events, "audit events differ");
}
