//! Multi-macro-particle beam physics — the paper's Section V discussion and
//! Section VI future work: a displaced bunch of many particles decoheres
//! (Landau damping / filamentation), but the control loop damps the
//! coherent motion much faster; and the bunch profile feeds the parametric
//! pulse generator.
//!
//! ```text
//! cargo run --release --example multi_bunch_beam
//! ```

use cavity_in_the_loop::control::BeamPhaseController;
use cavity_in_the_loop::physics::constants::TWO_PI;
use cavity_in_the_loop::physics::distribution::BunchSpec;
use cavity_in_the_loop::reftrack::ensemble::Ensemble;
use cavity_in_the_loop::reftrack::landau::analyze_decoherence;
use cavity_in_the_loop::reftrack::observables::parametric_pulse;
use cavity_in_the_loop::reftrack::tracker::{MultiParticleTracker, TrackerConfig};
use cavity_in_the_loop::scenario::MdeScenario;

fn main() {
    let scenario = MdeScenario::nov24_2023();
    let op = scenario.operating_point().unwrap();
    let particles = 20_000;
    let period_turns = (op.f_rev() / scenario.fs_target) as usize;
    let turns = period_turns * 12;

    println!(
        "multi-bunch beam: {particles} macro particles, {} turns (~{:.0} ms)\n",
        turns,
        turns as f64 / op.f_rev() * 1e3
    );

    // A displaced wide bunch, loop OFF: filamentation damps the centroid.
    let run = |closed: bool| -> Vec<f64> {
        let mut e = Ensemble::matched(&BunchSpec::gaussian(40e-9), particles, &op, 1).unwrap();
        e.displace_dt(20e-9);
        let mut tracker = MultiParticleTracker::new(op, e, TrackerConfig::default());
        let mut ctrl = BeamPhaseController::new(scenario.controller, op.f_rev());
        ctrl.enabled = closed;
        let mut ctrl_phase = 0.0f64;
        let mut trace = Vec::with_capacity(turns);
        for _ in 0..turns {
            tracker.step(ctrl_phase);
            let phase_deg = tracker.centroid_phase_deg();
            if let Some(u) = ctrl.push_measurement(phase_deg) {
                ctrl_phase += TWO_PI * u / op.f_rev() * f64::from(scenario.controller.decimation);
            }
            trace.push(tracker.ensemble.centroid_dt());
        }
        trace
    };

    for (label, closed) in [
        ("Landau/filamentation only (loop open)", false),
        ("control loop closed", true),
    ] {
        let trace = run(closed);
        let d = analyze_decoherence(&trace, period_turns);
        println!("{label}:");
        println!(
            "  initial coherent amplitude : {:.1} ns",
            d.initial_amplitude * 1e9
        );
        println!(
            "  after 12 periods           : {:.1} ns",
            d.final_amplitude * 1e9
        );
        match d.damping_turns {
            Some(tau) => println!(
                "  damping time               : {:.1} ms\n",
                tau / op.f_rev() * 1e3
            ),
            None => println!("  damping time               : (no clean exponential)\n"),
        }
    }
    println!("paper: \"the damping from the control loop is much stronger,");
    println!("[so] the effect of filamentation and Landau damping can be");
    println!("neglected for the controlled system.\"\n");

    // The Section VI parametric pulse: bunch profile after filamentation.
    let mut e = Ensemble::matched(&BunchSpec::gaussian(40e-9), particles, &op, 2).unwrap();
    e.displace_dt(20e-9);
    let mut tracker = MultiParticleTracker::new(op, e, TrackerConfig::default());
    for _ in 0..turns {
        tracker.step(0.0);
    }
    let pulse = parametric_pulse(&tracker.ensemble, 150e-9, 48);
    println!("parametric beam pulse from the filamented bunch profile");
    println!("(replaces the fixed synthetic Gauss pulse, Section VI):");
    for (i, v) in pulse.iter().enumerate() {
        if i % 2 == 0 {
            let bar = "#".repeat((v * 40.0) as usize);
            println!("  {bar}");
        }
    }
}
