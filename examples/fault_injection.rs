//! Fault injection and loop supervision demo.
//!
//! Runs the Fig. 5 experiment twice under a detector-outlier storm — once
//! with the bare loop, once under the [`LoopSupervisor`] — and then forces
//! deadline overruns on the CGRA engine to show graceful degradation to the
//! analytic map. Prints the audit trail a real machine shift would read.
//!
//! ```text
//! cargo run --release --example fault_injection
//! cargo run --release --example fault_injection -- --telemetry
//! ```
//!
//! `--telemetry` accumulates both supervised runs into one metrics registry
//! and prints the snapshot in Prometheus text format and JSON.

use cil_core::fault::{FaultEvent, FaultKind, LoopEvent};
use cil_core::harness::{LoopHarness, LoopTrace};
use cil_core::hil::EngineKind;
use cil_core::signalgen::PhaseJumpProgram;
use cil_core::{FaultProgram, LoopSupervisor, MdeScenario, TelemetryRegistry};

fn tail_residual_deg(trace: &LoopTrace, t_from: f64) -> f64 {
    let tail: Vec<f64> = trace
        .times
        .iter()
        .zip(&trace.mean_phase_deg)
        .filter(|(&t, _)| t >= t_from)
        .map(|(_, &v)| v)
        .collect();
    let lo = tail.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = tail.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (hi - lo) / 2.0
}

fn count<F: Fn(&LoopEvent) -> bool>(trace: &LoopTrace, f: F) -> usize {
    trace.events.iter().filter(|e| f(e)).count()
}

fn main() {
    let telemetry = std::env::args().any(|a| a == "--telemetry");
    let registry = TelemetryRegistry::new();

    // A persistent 15 deg RF phase jump at 60 ms, with a detector-outlier
    // storm (8% of rows spiked by +/-120 deg) raging from 50 ms on.
    let mut s = MdeScenario::nov24_2023();
    s.duration_s = 0.2;
    s.bunches = 1;
    s.jumps = PhaseJumpProgram {
        amplitude_deg: 15.0,
        interval_s: 10.0,
        path_latency_s: -(10.0 - 0.06),
    };
    s.faults = FaultProgram::detector_outlier_storm(0.05, 0.2, 0.08, 120.0, 0xBAD5EED);

    println!("== detector-outlier storm: 8% of rows spiked +/-120 deg ==");

    let mut harness = LoopHarness::for_scenario(&s, true);
    let mut engine = EngineKind::Map.build(&s).expect("map engine builds");
    let bare = harness.run(engine.as_mut(), s.duration_s);
    println!(
        "bare loop:       {} corrupted rows, tail residual {:7.2} deg",
        count(&bare, |e| matches!(e, LoopEvent::RowCorrupted { .. })),
        tail_residual_deg(&bare, 0.15),
    );

    let mut harness = LoopHarness::for_scenario(&s, true);
    if telemetry {
        harness = harness.with_telemetry(&registry);
    }
    let mut sup = LoopSupervisor::for_scenario(&s);
    let supervised = harness
        .run_supervised(&s, EngineKind::Map, s.duration_s, &mut sup)
        .expect("supervised run completes");
    println!(
        "supervised loop: {} rejected rows,  tail residual {:7.2} deg",
        count(&supervised, |e| matches!(
            e,
            LoopEvent::OutlierRejected { .. }
        )),
        tail_residual_deg(&supervised, 0.15),
    );

    // Force the modelled CGRA step wall-clock past the revolution budget:
    // the watchdog demotes to the analytic map and keeps the loop closed.
    println!("\n== forced deadline overruns on the CGRA engine ==");
    let mut s2 = MdeScenario::nov24_2023();
    s2.duration_s = 0.05;
    s2.bunches = 1;
    s2.faults = FaultProgram {
        seed: 0,
        events: vec![FaultEvent {
            start_s: 0.01,
            end_s: s2.duration_s,
            kind: FaultKind::DeadlineOverrun { factor: 3.0 },
        }],
    };
    let mut harness = LoopHarness::for_scenario(&s2, true);
    if telemetry {
        harness = harness.with_telemetry(&registry);
    }
    let mut sup = LoopSupervisor::for_scenario(&s2);
    let trace = harness
        .run_supervised(&s2, EngineKind::Cgra, s2.duration_s, &mut sup)
        .expect("supervised run completes");
    println!(
        "overruns logged: {}, survived to scheduled end: {}",
        count(&trace, |e| matches!(e, LoopEvent::DeadlineOverrun { .. })),
        trace.survived(),
    );
    for e in &trace.events {
        if let LoopEvent::EngineDemoted {
            turn,
            time_s,
            from,
            to,
        } = e
        {
            println!("demotion: {from:?} -> {to:?} at turn {turn} (t = {time_s:.4} s)");
        }
    }

    if telemetry {
        cil_core::telemetry::sample_global_kernel_cache(&registry);
        let snap = registry.snapshot();
        println!("\n--- telemetry (Prometheus text format) ---");
        print!("{}", snap.to_prometheus());
        println!("\n--- telemetry (JSON) ---");
        println!("{}", snap.to_json());
    }
}
