//! The Fig. 5 experiment as a runnable scenario: periodic RF phase jumps
//! with the beam-phase control loop open vs closed, CSV traces exported for
//! plotting.
//!
//! ```text
//! cargo run --release --example phase_jump_damping
//! ```

use cavity_in_the_loop::hil::{EngineKind, TurnLevelLoop};
use cavity_in_the_loop::scenario::MdeScenario;
use cavity_in_the_loop::trace::score_jump_response;
use std::fs;

fn main() {
    let mut scenario = MdeScenario::nov24_2023();
    scenario.duration_s = 0.2;
    scenario.bunches = 1;

    println!(
        "phase-jump damping: {} deg jumps every {} ms, fs = {:.2} kHz\n",
        scenario.jumps.amplitude_deg,
        scenario.jumps.interval_s * 1e3,
        scenario.fs_target / 1e3
    );

    fs::create_dir_all("results").expect("create results dir");

    for (label, closed) in [("open", false), ("closed", true)] {
        let result = TurnLevelLoop::new(scenario.clone(), EngineKind::Map)
            .run(closed)
            .expect("run completes");
        let display = result.display_trace();
        let path = format!("results/example_phase_jump_{label}.csv");
        fs::write(&path, display.to_csv()).expect("write trace");

        let t_jump = result.jump_times[0];
        let r = score_jump_response(
            &display,
            t_jump,
            t_jump + scenario.jumps.interval_s * 0.9,
            scenario.jumps.amplitude_deg,
        );
        println!("{label}-loop:");
        println!("  first peak      {:.2} x jump", r.first_peak_ratio);
        println!("  residual        {:.1} %", r.residual_ratio * 100.0);
        match r.damping_time_s {
            Some(tau) => println!("  damping tau     {:.1} ms", tau * 1e3),
            None => println!("  damping tau     none (undamped)"),
        }
        println!("  trace           {path}\n");
    }

    println!("expected: open loop rings until the next jump; closed loop");
    println!("damps within a few ms — the Fig. 5 behaviour.");
}
