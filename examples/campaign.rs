//! Campaign demo: sweep the controller gain over a few hundred scenario
//! points through the crash-safe campaign runner, "crash" the campaign
//! partway through, resume it, and show the resumed aggregate CSV is
//! byte-identical to an uninterrupted run's — with a poisoned point
//! quarantined instead of sinking the fleet.
//!
//! ```text
//! cargo run --release --example campaign
//! ```

use cil_core::campaign::{
    Campaign, CampaignConfig, CampaignWorker, PointStatus, CAMPAIGN_LOG_NAME,
};
use cil_core::error::{CilError, Result};
use cil_core::hil::{EngineKind, TurnLevelLoop};
use cil_core::MdeScenario;

fn points() -> Vec<MdeScenario> {
    (0..240)
        .map(|i| {
            let mut s = MdeScenario::nov24_2023();
            s.duration_s = 0.003;
            s.bunches = 1;
            s.jumps.interval_s = 0.001;
            s.controller.gain = -0.1 - 0.05 * f64::from(i);
            s
        })
        .collect()
}

/// One point: run the closed loop, return the tail residual. Gain −6.0
/// plays the poison point — it always errors, so the campaign retries it
/// and then quarantines it.
fn evaluate(worker: &mut CampaignWorker, s: &MdeScenario) -> Result<Vec<f64>> {
    if (s.controller.gain + 6.0).abs() < 1e-9 {
        return Err(CilError::InvalidConfig(
            "demo poison point: this gain always fails".into(),
        ));
    }
    let engine = worker.arena.engine(s, EngineKind::Map)?;
    let r = TurnLevelLoop::new(s.clone(), EngineKind::Map).run_on(engine, true)?;
    let tail = &r.phase_deg.values[r.phase_deg.values.len() / 2..];
    Ok(vec![
        tail.iter().map(|v| v.abs()).sum::<f64>() / tail.len() as f64,
    ])
}

fn config(dir: std::path::PathBuf) -> CampaignConfig {
    let mut cfg = CampaignConfig::new(dir, &["tail_residual_deg"]);
    cfg.shard_points = 16;
    cfg.max_retries = 1;
    cfg
}

fn main() {
    let points = points();
    let base = std::env::temp_dir().join("cil-campaign-demo");
    let _ = std::fs::remove_dir_all(&base);

    // ---- reference: the campaign nothing ever happens to ------------------
    let reference = Campaign::new(&points, config(base.join("reference")))
        .expect("valid config")
        .run(evaluate)
        .expect("campaign runs");
    println!(
        "reference campaign : {} completed, {} quarantined, {} shards",
        reference.completed, reference.quarantined, reference.shards_total
    );

    // ---- the doomed campaign ----------------------------------------------
    // Chop the WAL after a handful of committed shards (plus a torn
    // half-frame) — exactly what a SIGKILL mid-append leaves behind.
    let dir = base.join("crashed");
    Campaign::new(&points, config(dir.clone()))
        .expect("valid config")
        .run(evaluate)
        .expect("campaign runs");
    let log = dir.join(CAMPAIGN_LOG_NAME);
    let bytes = std::fs::read(&log).expect("read WAL");
    let cut = bytes.len() / 3;
    std::fs::write(&log, &bytes[..cut]).expect("truncate WAL");
    println!(
        "crashed campaign   : WAL chopped to {cut} of {} bytes",
        bytes.len()
    );

    // ---- resume -----------------------------------------------------------
    let resumed = Campaign::new(&points, config(dir))
        .expect("valid config")
        .run(evaluate)
        .expect("campaign resumes");
    println!(
        "resumed campaign   : {} shards recovered from the WAL, {} re-executed",
        resumed.shards_resumed,
        resumed.shards_total - resumed.shards_resumed
    );

    for o in &resumed.outcomes {
        if let PointStatus::Quarantined(msg) = &o.status {
            println!(
                "quarantined point  : index {} after {} attempts — {msg}",
                o.index, o.attempts
            );
        }
    }

    let a = std::fs::read(&reference.aggregate_csv).expect("reference CSV");
    let b = std::fs::read(&resumed.aggregate_csv).expect("resumed CSV");
    assert_eq!(a, b, "resumed aggregate CSV must be byte-identical");
    println!("aggregate CSVs     : byte-identical ({} bytes)", a.len());
}
