//! Quickstart: run the Nov 24 2023 MDE scenario closed-loop at turn level
//! and print the headline observables.
//!
//! ```text
//! cargo run --release --example quickstart
//! cargo run --release --example quickstart -- --telemetry
//! ```
//!
//! `--telemetry` attaches a metrics registry to the run and prints the
//! snapshot in Prometheus text format after the physics summary.

use cavity_in_the_loop::hil::{EngineKind, TurnLevelLoop};
use cavity_in_the_loop::scenario::MdeScenario;
use cavity_in_the_loop::telemetry::{sample_global_kernel_cache, TelemetryRegistry};
use cavity_in_the_loop::trace::score_jump_response;

fn main() {
    let telemetry = std::env::args().any(|a| a == "--telemetry");
    // The evaluation scenario: SIS18, 14N7+, 800 kHz / h=4, fs = 1.28 kHz,
    // 8 degree phase jumps every 0.05 s, beam-phase controller at the
    // paper's settings (f_pass 1.4 kHz, gain -5, recursion 0.99).
    let mut scenario = MdeScenario::nov24_2023();
    scenario.duration_s = 0.15; // three jump events
    scenario.bunches = 1;

    println!(
        "scenario: {} at {:.0} kHz (h = {}), V_gap = {:.0} V",
        scenario.ion.name,
        scenario.f_rev / 1e3,
        scenario.harmonic(),
        scenario.v_hat().unwrap()
    );

    // Run the closed loop with the beam model executing on the simulated
    // CGRA (the cavity in the loop).
    let registry = TelemetryRegistry::new();
    let mut hil = TurnLevelLoop::new(scenario.clone(), EngineKind::Cgra);
    if telemetry {
        hil = hil.with_telemetry(&registry);
    }
    let result = hil.run(true).unwrap();

    println!(
        "simulated {} revolutions, {} phase jumps",
        result.phase_deg.len(),
        result.jump_times.len()
    );

    // Score the first jump response like the paper reads Fig. 5.
    let t_jump = result.jump_times[0];
    let r = score_jump_response(
        &result.display_trace(),
        t_jump,
        t_jump + scenario.jumps.interval_s * 0.9,
        scenario.jumps.amplitude_deg,
    );
    println!();
    println!(
        "first peak after the jump : {:.2} x the jump amplitude (paper: ~2x)",
        r.first_peak_ratio
    );
    println!(
        "residual oscillation      : {:.1} % of initial (loop damps it)",
        r.residual_ratio * 100.0
    );
    if let Some(tau) = r.damping_time_s {
        println!("damping time constant     : {:.1} ms", tau * 1e3);
    }
    let w = result.phase_deg.window(t_jump + 1e-4, t_jump + 0.045);
    let (fs, _) = w.dominant_frequency(600.0, 3000.0);
    println!(
        "synchrotron frequency     : {:.2} kHz (target 1.28 kHz)",
        fs / 1e3
    );

    if telemetry {
        sample_global_kernel_cache(&registry);
        println!();
        println!("--- telemetry (Prometheus text format) ---");
        print!("{}", registry.snapshot().to_prometheus());
    }
}
