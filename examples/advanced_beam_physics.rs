//! Beyond the paper's model: dual-harmonic buckets and beam loading — the
//! effects the paper defers to offline codes (Section II) or future work
//! (Section VI), implemented on the same substrates.
//!
//! ```text
//! cargo run --release --example advanced_beam_physics
//! ```

use cavity_in_the_loop::physics::distribution::BunchSpec;
use cavity_in_the_loop::physics::dual_harmonic::DualHarmonicRf;
use cavity_in_the_loop::physics::tracking::TwoParticleMap;
use cavity_in_the_loop::reftrack::ensemble::Ensemble;
use cavity_in_the_loop::reftrack::tracker::{MultiParticleTracker, TrackerConfig};
use cavity_in_the_loop::reftrack::wake::{BeamLoading, Resonator};
use cavity_in_the_loop::scenario::MdeScenario;

fn main() {
    let scenario = MdeScenario::nov24_2023();
    let op = scenario.operating_point().unwrap();

    // ---- dual-harmonic bucket: amplitude-dependent synchrotron frequency
    println!("== dual-harmonic RF (SIS18 bunch-lengthening mode) ==\n");
    let single = DualHarmonicRf::single(op.v_gap_volts);
    let dual = DualHarmonicRf::bunch_lengthening(op.v_gap_volts);
    println!(
        "{:>12} {:>18} {:>18}",
        "amplitude", "fs single [Hz]", "fs dual [Hz]"
    );
    for amp_deg in [2.0, 5.0, 10.0, 20.0, 40.0] {
        let fs_s = single.fs_at_amplitude(&op, amp_deg, 400_000);
        let fs_d = dual.fs_at_amplitude(&op, amp_deg, 400_000);
        let fmt = |o: Option<f64>| o.map_or("-".into(), |f| format!("{f:.1}"));
        println!("{:>10}°  {:>18} {:>18}", amp_deg, fmt(fs_s), fmt(fs_d));
    }
    println!();
    println!("single-harmonic: pendulum softening (fs falls with amplitude);");
    println!("dual-harmonic:   flat bucket centre (fs rises from near zero) —");
    println!("the frequency spread that makes flattened bunches Landau-stable.\n");

    // ---- dwell profile: in the flattened bucket a particle spends a
    // larger share of its period near the centre; over a full matched
    // ensemble this is what flattens the line density.
    let dwell_fraction = |rf: &DualHarmonicRf| {
        let mut map = TwoParticleMap::at_operating_point(&op);
        map.particle.dt = 10.0 / 360.0 / op.f_rf();
        let limit = 3.0 / 360.0 / op.f_rf();
        let mut inside = 0usize;
        let turns = 100_000;
        for _ in 0..turns {
            if rf.step(&mut map, 0.0).abs() < limit {
                inside += 1;
            }
        }
        inside as f64 / turns as f64
    };
    println!(
        "fraction of time within ±3° of the centre: single {:.0}% vs dual {:.0}%\n",
        dwell_fraction(&single) * 100.0,
        dwell_fraction(&dual) * 100.0
    );

    // ---- beam loading: intensity-dependent equilibrium shift
    println!("== beam loading (resonator gap impedance) ==\n");
    let f_rf = op.f_rf();
    println!(
        "{:>14} {:>22} {:>18}",
        "bunch charge", "equilibrium shift [ns]", "stored V [V]"
    );
    for charge in [1e-10, 1e-9, 1e-8, 5e-8] {
        let particles = 2000;
        let e = Ensemble::matched(&BunchSpec::gaussian(12e-9), particles, &op, 7).unwrap();
        let mut tracker = MultiParticleTracker::new(op, e, TrackerConfig::default());
        let mut bl = BeamLoading::new(Resonator::sis18_like(f_rf), charge, particles);
        let turns = (op.f_rev() / scenario.fs_target * 8.0) as usize;
        let q_over_mc2 = op.ion.gamma_per_volt();
        let mut tail = 0.0;
        let tail_start = turns * 3 / 4;
        for turn in 0..turns {
            let v_ind = bl.passage(&tracker.ensemble, turn as f64 / op.f_rev());
            for (g, v) in tracker.ensemble.dgamma.iter_mut().zip(&v_ind) {
                *g += q_over_mc2 * v;
            }
            tracker.step(0.0);
            if turn >= tail_start {
                tail += tracker.ensemble.centroid_dt();
            }
        }
        let shift_ns = tail / (turns - tail_start) as f64 * 1e9;
        println!(
            "{:>12} C {:>22.3} {:>18.1}",
            charge,
            shift_ns,
            bl.stored_voltage()
        );
    }
    println!();
    println!("the bunch decelerates itself in the gap impedance; the stable");
    println!("phase moves until the RF makes up the loss — the synchronous-");
    println!("phase shift a high-intensity LLRF must program out. These are");
    println!("the effects the real-time two-particle HIL model trades away");
    println!("for determinism, quantified on the same code base.");
}
