//! Degraded-plant demo: cavity failure, RF compensation, graceful loss.
//!
//! Kicks the beam with a persistent 8° phase jump, then quenches the gap
//! voltage a quarter synchrotron period later — right at peak energy
//! swing, the worst possible moment — and runs the same seeded experiment
//! under each [`CompensationPolicy`]: no policy, controller gain rescale,
//! and slew-limited voltage rematch. Prints the degradation ladder a
//! machine shift would read: sag detection, compensation engagement, and
//! the beam-loss turn each policy reaches. Both compensation policies
//! strictly extend survival over doing nothing.
//!
//! ```text
//! cargo run --release --example cavity_failure
//! ```

use cil_core::fault::LoopEvent;
use cil_core::harness::LoopHarness;
use cil_core::hil::EngineKind;
use cil_core::signalgen::PhaseJumpProgram;
use cil_core::{CompensationPolicy, FaultProgram, LoopOutcome, LoopSupervisor, MdeScenario};

fn main() {
    // The Fig. 5 experiment with a hostile twist: an 8° phase jump at
    // 50 ms sets the bunch oscillating, and 0.2 ms later — near maximum
    // energy deviation — the cavity quenches with a 1 ms collapse
    // constant. The bucket shrinks with sqrt(V); whatever synchrotron
    // motion is left when the voltage dies carries the beam out of the
    // vanishing bucket unless compensation buys the loop time to damp it.
    let mut s = MdeScenario::nov24_2023();
    s.duration_s = 0.3;
    s.bunches = 1;
    s.jumps = PhaseJumpProgram {
        amplitude_deg: 8.0,
        interval_s: 10.0,
        path_latency_s: -(10.0 - 0.05),
    };
    s.faults = FaultProgram::cavity_quench(0.0502, 1e-3, 0xCAF0);

    println!("== 8 deg jump at 50 ms, cavity quench 0.2 ms later (tau = 1 ms) ==");
    for policy in [
        CompensationPolicy::None,
        CompensationPolicy::gain_rescale(),
        CompensationPolicy::voltage_rematch(),
    ] {
        let mut harness = LoopHarness::for_scenario(&s, true);
        let mut sup = LoopSupervisor::for_scenario(&s);
        sup.config.compensation = policy;
        let trace = harness
            .run_supervised(&s, EngineKind::Map, s.duration_s, &mut sup)
            .expect("supervised run completes");

        let sag = trace.events.iter().find_map(|e| match *e {
            LoopEvent::CavitySagDetected { turn, .. } => Some(turn),
            _ => None,
        });
        let engaged = trace.events.iter().find_map(|e| match *e {
            LoopEvent::CompensationEngaged { turn, .. } => Some(turn),
            _ => None,
        });
        let outcome = match trace.outcome {
            LoopOutcome::Survived => "survived to scheduled end".to_string(),
            LoopOutcome::Lost {
                turn,
                time_s,
                cause,
            } => format!("lost at turn {turn} (t = {time_s:.4} s): {cause}"),
        };
        println!(
            "{:16} sag @ {:?}, engaged @ {:?}, boost {:.2}, gain x{:.2} -> {}",
            policy.label(),
            sag,
            engaged,
            sup.commanded_boost(),
            sup.commanded_gain_scale(),
            outcome
        );
    }
}
