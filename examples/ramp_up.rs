//! The ramp-up case — the paper's Section VI current work: "simulat[ing]
//! the bunches after injection into the ring … emulat[ing] the acceleration
//! phase with variable RF frequencies and amplitudes."
//!
//! Tracks the two-particle model through an SIS18-like injection ramp:
//! the revolution frequency sweeps 100 kHz → 800 kHz while the gap voltage
//! rises, the synchronous phase follows the programmed slope, and the
//! macro particle's oscillation stays bound.
//!
//! ```text
//! cargo run --release --example ramp_up
//! ```

use cavity_in_the_loop::physics::machine::MachineParams;
use cavity_in_the_loop::physics::ramp::{Curve, RampProgram, RampTracker};
use cavity_in_the_loop::physics::IonSpecies;
use std::fmt::Write as _;
use std::fs;

fn main() {
    let machine = MachineParams::sis18();
    let ion = IonSpecies::n14_7plus();

    // A gentle 2-second injection ramp (real SIS18 ramps are ~1 s).
    let program = RampProgram {
        f_rev: Curve::linear(0.1, 100e3, 2.0, 800e3),
        v_hat: Curve::from_points(vec![(0.0, 4e3), (0.5, 12e3), (2.0, 16e3)]),
    };
    let mut tracker = RampTracker::new(machine, ion, program);
    // Launch the bunch slightly off the synchronous phase.
    tracker.map.particle.dt = 50e-9;

    println!(
        "ramp-up: {} in SIS18, f_rev 100 kHz -> 800 kHz over 1.9 s\n",
        ion.name
    );
    println!(
        "{:>8} {:>12} {:>10} {:>12} {:>12} {:>10}",
        "t [ms]", "f_rev [kHz]", "gamma_R", "phi_s [deg]", "dt [ns]", "E [MeV/u]"
    );

    let mut csv = String::from("t_s,f_rev_hz,gamma_r,phi_s_deg,dt_s\n");
    let mut next_print = 0.0f64;
    let mut max_dt: f64 = 0.0;
    while tracker.time < 2.1 {
        let Some(sample) = tracker.step() else {
            println!(
                "!! ramp over-demanded the bucket at t = {:.3} s",
                tracker.time
            );
            std::process::exit(1);
        };
        max_dt = max_dt.max(sample.dt.abs());
        if sample.time >= next_print {
            let f_rev = tracker.map.machine.revolution_frequency(sample.gamma_r);
            let e_per_u =
                (sample.gamma_r - 1.0) * ion.rest_energy_ev / f64::from(ion.mass_number) / 1e6;
            println!(
                "{:8.1} {:12.1} {:10.5} {:12.2} {:12.2} {:10.1}",
                sample.time * 1e3,
                f_rev / 1e3,
                sample.gamma_r,
                sample.phi_s.to_degrees(),
                sample.dt * 1e9,
                e_per_u
            );
            writeln!(
                csv,
                "{:.6},{:.1},{:.8},{:.4},{:.4e}",
                sample.time,
                f_rev,
                sample.gamma_r,
                sample.phi_s.to_degrees(),
                sample.dt
            )
            .unwrap();
            next_print += 0.1;
        }
    }

    fs::create_dir_all("results").unwrap();
    fs::write("results/example_ramp_up.csv", csv).unwrap();
    let f_final = tracker
        .map
        .machine
        .revolution_frequency(tracker.map.reference.gamma);
    println!(
        "\nreached f_rev = {:.1} kHz after {} revolutions",
        f_final / 1e3,
        tracker.turn
    );
    println!(
        "max |dt| during the ramp: {:.1} ns (bunch stayed captured)",
        max_dt * 1e9
    );
    println!("trace -> results/example_ramp_up.csv");
}
