//! Crash recovery demo: run the closed loop with periodic checkpointing,
//! "crash" it partway through, resume from disk, and show the recovered run
//! is bit-identical to one that was never interrupted.
//!
//! ```text
//! cargo run --release --example crash_recovery
//! ```

use cil_core::checkpoint::{snapshot_turns, CheckpointConfig};
use cil_core::fault::{FaultEvent, FaultKind, FaultProgram};
use cil_core::harness::{LoopHarness, LoopTrace};
use cil_core::hil::EngineKind;
use cil_core::{LoopSupervisor, MdeScenario};

fn main() {
    // The Nov 24 2023 machine experiment, shortened, with forced deadline
    // overruns from 20 ms so the supervised run demotes CGRA → map
    // mid-flight. The kill lands *after* the demotion: the checkpoint must
    // capture not just the beam state but which fidelity is running.
    let mut s = MdeScenario::nov24_2023();
    s.duration_s = 0.05;
    s.bunches = 1;
    s.faults = FaultProgram {
        seed: 0,
        events: vec![FaultEvent {
            start_s: 0.02,
            end_s: 0.05,
            kind: FaultKind::DeadlineOverrun { factor: 3.0 },
        }],
    };

    let dir = std::env::temp_dir().join("cil-crash-recovery-demo");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = CheckpointConfig::new(dir.clone()); // every 256 turns, keep 2

    // ---- reference: the run nothing ever happens to -----------------------
    let mut harness = LoopHarness::for_scenario(&s, true);
    let mut sup = LoopSupervisor::for_scenario(&s);
    let reference = harness
        .run_supervised(&s, EngineKind::Cgra, s.duration_s, &mut sup)
        .unwrap();
    println!("reference run : {}", describe(&reference));

    // ---- the doomed run ---------------------------------------------------
    // Stopping at 35 ms stands in for a SIGKILL at that instant: checkpoint
    // writes are atomic (tmp + rename) and happen only at cadence
    // boundaries, so the directory is exactly what a real crash leaves.
    let crash_at = 0.035;
    let mut harness = LoopHarness::for_scenario(&s, true).with_checkpointing(cfg.clone());
    let mut sup = LoopSupervisor::for_scenario(&s);
    let partial = harness
        .run_supervised(&s, EngineKind::Cgra, crash_at, &mut sup)
        .unwrap();
    println!(
        "crashed run   : {} (killed at {:.0} ms)",
        describe(&partial),
        crash_at * 1e3
    );
    let turns = snapshot_turns(&dir).unwrap();
    println!(
        "on disk       : snapshots at turns {:?} + write-ahead trace log",
        turns
    );

    // ---- recovery ---------------------------------------------------------
    // A fresh harness and supervisor — a new process, as far as state is
    // concerned — picks up from the newest good snapshot and replays
    // nothing: the trace log already holds every row up to the cut.
    let mut harness = LoopHarness::for_scenario(&s, true).with_checkpointing(cfg);
    let mut sup = LoopSupervisor::for_scenario(&s);
    let resumed = harness
        .resume_supervised_from(&s, s.duration_s, &mut sup)
        .unwrap();
    println!("resumed run   : {}", describe(&resumed));

    // ---- the point --------------------------------------------------------
    let identical = reference.times == resumed.times
        && reference.bunch_phase_deg == resumed.bunch_phase_deg
        && reference.mean_phase_deg == resumed.mean_phase_deg
        && reference.control_hz == resumed.control_hz
        && reference.jump_times == resumed.jump_times
        && reference.events == resumed.events;
    println!();
    if identical {
        println!("resumed == uninterrupted, bit for bit: every row, every audit");
        println!("event, every f64 — the crash is invisible in the physics.");
    } else {
        println!("MISMATCH between resumed and reference runs!");
        std::process::exit(1);
    }

    let _ = std::fs::remove_dir_all(&dir);
}

fn describe(t: &LoopTrace) -> String {
    format!(
        "{} rows, {} audit events, final mean phase {:+.4}°",
        t.times.len(),
        t.events.len(),
        t.mean_phase_deg.last().copied().unwrap_or(f64::NAN)
    )
}
