//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of `rand` it actually uses: the [`Rng`] facade with
//! `gen`/`gen_range`, a seedable deterministic [`StdRng`], and the
//! [`distributions::Distribution`] trait. The generator is SplitMix64 —
//! statistically solid for simulation noise and test fixtures, and
//! deliberately deterministic per seed; it is *not* cryptographic.

#![forbid(unsafe_code)]

use core::ops::Range;

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the "standard" distribution of `T`
    /// (uniform `[0, 1)` for `f64`).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_uniform(self, range)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait SampleStandard: Sized {
    /// Draw one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Types samplable by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Draw one value uniformly from `range` (half-open).
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, range: Range<f64>) -> f64 {
        range.start + (range.end - range.start) * f64::sample_standard(rng)
    }
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end - range.start) as u64;
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The workspace's standard deterministic generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        Self {
            state: seed ^ 0x6A09_E667_F3BC_C909,
        }
    }
}

impl StdRng {
    /// Raw generator state (not the seed): together with [`Self::from_state`]
    /// this checkpoints the stream mid-flight, so a restored generator
    /// continues the exact draw sequence without replaying draw counts.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuild a generator at an exact stream position captured by
    /// [`Self::state`].
    pub fn from_state(state: u64) -> Self {
        Self { state }
    }
}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    pub use crate::StdRng;
}

/// Distribution sampling (mirrors `rand::distributions`).
pub mod distributions {
    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draw one value using `rng`.
        fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n = rng.gen_range(3u32..9);
            assert!((3..9).contains(&n));
        }
    }

    #[test]
    fn unsized_rng_callable() {
        fn takes_dynish<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            f64::sample_standard(rng)
        }
        let mut rng = StdRng::seed_from_u64(1);
        let v = takes_dynish(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
