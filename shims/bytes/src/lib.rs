//! Offline stand-in for the `bytes` crate.
//!
//! Provides the little-endian cursor API the recorder wire format uses
//! ([`Buf`]/[`BufMut`] plus owned [`Bytes`]/[`BytesMut`]). Unlike the real
//! crate there is no refcounted zero-copy sharing — `Bytes` owns a `Vec` and
//! `slice` copies — which is irrelevant at the recording sizes involved and
//! keeps the shim trivial to audit.

#![forbid(unsafe_code)]

use core::ops::Range;

/// Read cursor over a byte stream.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copy exactly `dst.len()` bytes out, advancing the cursor.
    /// Panics on underflow (callers guard with [`Buf::remaining`]).
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one `u8`.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write sink for a byte stream.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy the unread bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    /// Copy of the sub-range `range` of the unread bytes.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        Bytes {
            data: self.data[self.pos + range.start..self.pos + range.end].to_vec(),
            pos: 0,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "bytes: buffer underflow");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = BytesMut::with_capacity(32);
        w.put_slice(b"HDR!");
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(42);
        w.put_f64_le(-1.25e-6);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 4 + 4 + 8 + 8);
        let mut hdr = [0u8; 4];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR!");
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_f64_le(), -1.25e-6);
        assert!(r.is_empty());
    }

    #[test]
    fn slice_copies_subrange() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(s.to_vec(), vec![2, 3, 4]);
        assert_eq!(b.len(), 6, "source untouched");
    }
}
