//! Offline stand-in for `criterion`.
//!
//! Keeps the bench targets compiling and runnable without the registry.
//! Each `Bencher::iter` body runs a small fixed number of iterations and
//! reports wall-clock per-iteration time — enough to eyeball regressions
//! and to keep `cargo bench` fast, with none of criterion's statistics.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Re-exported hint preventing the optimiser from deleting bench bodies.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Iterations per `Bencher::iter` call (fixed; no warmup or sampling).
const ITERS: u32 = 10;

/// Measures one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    last_ns_per_iter: f64,
}

impl Bencher {
    /// Run `f` [`ITERS`] times and record the mean wall-clock time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(f());
        }
        self.last_ns_per_iter = start.elapsed().as_secs_f64() * 1e9 / f64::from(ITERS);
    }
}

/// Throughput annotation (accepted, unused).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterised benchmark id.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` id, as in real criterion.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Record the group's throughput (no-op in the shim).
    pub fn throughput(&mut self, _t: Throughput) {}

    fn run(&mut self, id: &str, b: &mut Bencher) {
        println!(
            "bench {}/{}: {:.1} ns/iter",
            self.name, id, b.last_ns_per_iter
        );
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        self.run(&id, &mut b);
        self
    }

    /// Run one benchmark over an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        self.run(&id.id, &mut b);
        self
    }

    /// End the group (no-op).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` for one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_body() {
        let mut count = 0u32;
        let mut b = Bencher::default();
        b.iter(|| count += 1);
        assert_eq!(count, ITERS);
        assert!(b.last_ns_per_iter >= 0.0);
    }

    #[test]
    fn group_api_flows() {
        let mut c = Criterion;
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_function("f", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("g", 4), &4u32, |b, &n| b.iter(|| n * 2));
        g.finish();
    }
}
