//! Offline stand-in for `serde_derive`.
//!
//! Emits empty `impl ::serde::Serialize`/`Deserialize` blocks for the
//! derived type. Built without `syn`/`quote` (registry unreachable): the
//! type name is extracted by scanning the item's top-level tokens for the
//! ident following `struct`/`enum`/`union`. Every derived type in this
//! workspace is non-generic, which the extraction asserts.

use proc_macro::{TokenStream, TokenTree};

/// Name of the type a derive was applied to.
fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(kw) = &tt {
            let kw = kw.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                match iter.next() {
                    Some(TokenTree::Ident(name)) => {
                        if let Some(TokenTree::Punct(p)) = iter.next() {
                            assert!(
                                p.as_char() != '<',
                                "serde shim derive does not support generic types",
                            );
                        }
                        return name.to_string();
                    }
                    other => panic!("expected type name after `{kw}`, found {other:?}"),
                }
            }
        }
    }
    panic!("serde shim derive: no struct/enum/union found in input");
}

/// Derive an (empty) `Serialize` impl. Accepts and ignores `#[serde(...)]`
/// helper attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

/// Derive an (empty) `Deserialize` impl. Accepts and ignores `#[serde(...)]`
/// helper attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
