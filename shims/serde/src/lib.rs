//! Offline stand-in for `serde`.
//!
//! The workspace only uses serde as a *capability marker*: types derive
//! `Serialize`/`Deserialize` so later PRs can wire real wire formats, but no
//! code path serialises anything yet. With the registry unreachable, this
//! shim supplies the two trait names plus derive macros that emit empty
//! impls, so every `#[derive(Serialize, Deserialize)]` and generic bound in
//! the tree keeps compiling unchanged. Swapping back to real serde is a
//! one-line change in the workspace manifest.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that can be serialised (no methods in the shim).
pub trait Serialize {}

/// Marker for types that can be deserialised (no methods in the shim).
pub trait Deserialize<'de>: Sized {}
