//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! `proptest! { #![proptest_config(...)] fn name(arg in strategy, ...) }`
//! macro form, range strategies for floats and unsigned integers,
//! `any::<T>()`, `prop::collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! Differences from real proptest, by design: cases are drawn from a
//! deterministic per-test seed (FNV of the test name), there is **no
//! shrinking** — a failure reports the generating seed and values are
//! reproducible by rerunning — and `proptest-regressions` files are ignored.

#![forbid(unsafe_code)]

/// Strategies: how to generate a value of some type.
pub mod strategy {
    use core::ops::Range;

    /// Deterministic per-case generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct CaseRng {
        state: u64,
    }

    impl CaseRng {
        /// New generator from a seed.
        pub fn new(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `usize` in `[0, bound)`; `bound` must be non-zero.
        pub fn next_usize(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }
    }

    /// A value-generation strategy.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut CaseRng) -> Self::Value;
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut CaseRng) -> f64 {
            self.start + (self.end - self.start) * rng.next_f64()
        }
    }

    macro_rules! impl_uint_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut CaseRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_uint_range_strategy!(u8, u16, u32, u64, usize);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::{CaseRng, Strategy};
    use core::marker::PhantomData;

    /// Types with a default "whole domain" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut CaseRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut CaseRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut CaseRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut CaseRng) -> f64 {
            // Finite, sign-symmetric, wide dynamic range.
            let mag = rng.next_f64() * 1e6;
            if rng.next_u64() & 1 == 1 {
                -mag
            } else {
                mag
            }
        }
    }

    /// Strategy wrapper returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    /// The default strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut CaseRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::{CaseRng, Strategy};
    use core::ops::Range;

    /// Half-open element-count range for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut CaseRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo;
            let len = self.size.lo + if span <= 1 { 0 } else { rng.next_usize(span) };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Config, errors, and the case-loop runner.
pub mod test_runner {
    use crate::strategy::CaseRng;

    /// Runner configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; retry with fresh ones.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }

        /// Build a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::Reject(msg.into())
        }
    }

    fn fnv1a(name: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1_0000_0000_01B3);
        }
        h
    }

    /// Run `config.cases` successful cases of `f`, panicking on the first
    /// failure with the generating seed. Rejections retry with fresh input,
    /// up to a cap.
    pub fn run_cases<F>(name: &str, config: &ProptestConfig, mut f: F)
    where
        F: FnMut(&mut CaseRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name);
        let max_rejects = u64::from(config.cases) * 64 + 1024;
        let mut passed = 0u32;
        let mut rejects = 0u64;
        let mut attempt = 0u64;
        while passed < config.cases {
            let seed = base ^ attempt.wrapping_mul(0xA076_1D64_78BD_642F);
            attempt += 1;
            let mut rng = CaseRng::new(seed);
            match f(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    assert!(
                        rejects <= max_rejects,
                        "proptest '{name}': too many prop_assume! rejections \
                         ({rejects} while seeking {} cases)",
                        config.cases
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed (case seed {seed:#018x}): {msg}")
                }
            }
        }
    }
}

/// Namespace mirror so `prop::collection::vec` resolves.
pub mod prop {
    pub use crate::collection;
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::arbitrary::{any, Any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` followed by `fn name(arg in strategy, ...)`
/// items.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run_cases(
                ::core::stringify!($name),
                &__config,
                |__rng: &mut $crate::strategy::CaseRng|
                    -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Assert inside a property test; failure reports the case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", ::core::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                    __left,
                    __right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "{}\n  left: `{:?}`\n right: `{:?}`",
                    ::std::format!($($fmt)+),
                    __left,
                    __right
                ),
            ));
        }
    }};
}

/// Discard the current case (retried with fresh inputs, not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::core::stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds and assume/assert plumbing works.
        #[test]
        fn ranges_in_bounds(x in -2.0f64..3.0, n in 1u32..9) {
            prop_assume!(x != 0.0);
            prop_assert!((-2.0..3.0).contains(&x), "x out of range: {x}");
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(any::<u8>(), 1..24)) {
            prop_assert!(!v.is_empty() && v.len() < 24);
        }

        #[test]
        fn exact_size_vec(v in prop::collection::vec(-1.0f64..1.0, 5)) {
            prop_assert_eq!(v.len(), 5);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::{CaseRng, Strategy};
        let s = 0.0f64..1.0;
        let a: Vec<f64> = (0..8).map(|i| s.generate(&mut CaseRng::new(i))).collect();
        let b: Vec<f64> = (0..8).map(|i| s.generate(&mut CaseRng::new(i))).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "proptest 'always_fails' failed")]
    fn failure_panics_with_seed() {
        crate::test_runner::run_cases("always_fails", &ProptestConfig::with_cases(4), |_| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
