//! Property-based physics invariants across the whole parameter space the
//! machine can realistically visit — not just the MDE operating point.

mod common;

use cavity_in_the_loop::physics::constants::C;
use cavity_in_the_loop::physics::machine::{MachineParams, OperatingPoint};
use cavity_in_the_loop::physics::relativity;
use cavity_in_the_loop::physics::synchrotron::SynchrotronCalc;
use cavity_in_the_loop::physics::tracking::{ExactMap, MacroParticle, TwoParticleMap};
use cavity_in_the_loop::physics::IonSpecies;
use cavity_in_the_loop::reftrack::kernel::KernelBackend;
use cavity_in_the_loop::reftrack::{MultiParticleTracker, TrackerConfig};
use common::{ions, matched_case};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// β/γ relations stay consistent over the full SIS18 frequency range.
    #[test]
    fn relativity_consistency(f_rev in 100e3f64..1.35e6) {
        let m = MachineParams::sis18();
        let gamma = relativity::gamma_from_revolution(f_rev, m.orbit_length_m);
        prop_assert!(gamma >= 1.0);
        let beta = relativity::beta_from_gamma(gamma);
        prop_assert!(beta > 0.0 && beta < 1.0);
        // Round trip.
        let f_back = m.revolution_frequency(gamma);
        prop_assert!((f_back - f_rev).abs() / f_rev < 1e-12);
        // Velocity consistency.
        prop_assert!((beta * C - f_rev * m.orbit_length_m).abs() < 1e-3);
    }

    /// The analytic synchrotron frequency matches the discrete tracking map
    /// to better than 1% over frequencies, voltages and species (below
    /// transition).
    #[test]
    fn fs_theory_matches_map(
        f_rev in 200e3f64..1.2e6,
        v_hat in 1e3f64..30e3,
        ion_idx in 0usize..4,
    ) {
        let m = MachineParams::sis18();
        let ion = ions()[ion_idx];
        let calc = SynchrotronCalc::new(m, ion);
        let Ok(fs) = calc.fs_stationary(f_rev, v_hat) else {
            // Above transition for this frequency: nothing to check.
            return Ok(());
        };
        // Keep the test fast: only track when a few periods fit in 50k turns.
        prop_assume!(fs > f_rev / 5_000.0);
        prop_assume!(fs < f_rev / 50.0); // discrete map resolution

        let op = OperatingPoint::from_revolution_frequency(m, ion, f_rev, v_hat);
        let mut map = TwoParticleMap::at_operating_point(&op);
        map.particle = MacroParticle::from_phase_offset_deg(1.0, &op);
        let mut crossings = Vec::new();
        let mut last = map.particle.dt;
        let max_turns = (f_rev / fs * 4.0) as usize;
        for n in 0..max_turns {
            let dt = map.step_stationary(v_hat, 0.0);
            if last < 0.0 && dt >= 0.0 {
                crossings.push(n);
            }
            last = dt;
        }
        prop_assume!(crossings.len() >= 2);
        let periods = (crossings.len() - 1) as f64;
        let fs_sim = f_rev * periods / (crossings[crossings.len() - 1] - crossings[0]) as f64;
        prop_assert!(
            (fs_sim - fs).abs() / fs < 0.01,
            "fs theory {} vs sim {} (f_rev {}, v {}, {})",
            fs, fs_sim, f_rev, v_hat, ion.name
        );
    }

    /// Small-amplitude motion is bounded: the linearised map never gains
    /// energy over thousands of turns (below transition).
    #[test]
    fn oscillation_bounded(
        f_rev in 200e3f64..1.2e6,
        v_hat in 2e3f64..20e3,
        phase_deg in 0.5f64..15.0,
    ) {
        let m = MachineParams::sis18();
        let ion = IonSpecies::n14_7plus();
        prop_assume!(m.below_transition(relativity::gamma_from_revolution(f_rev, m.orbit_length_m)));
        let op = OperatingPoint::from_revolution_frequency(m, ion, f_rev, v_hat);
        let mut map = TwoParticleMap::at_operating_point(&op);
        map.particle = MacroParticle::from_phase_offset_deg(phase_deg, &op);
        let dt0 = map.particle.dt;
        let mut max_dt: f64 = 0.0;
        for _ in 0..20_000 {
            max_dt = max_dt.max(map.step_stationary(v_hat, 0.0).abs());
        }
        prop_assert!(max_dt <= dt0 * 1.15, "max {} vs initial {}", max_dt, dt0);
    }

    /// The paper's linearised map agrees with the exact nonlinear map for
    /// small amplitudes (the three simplifications of Section IV-A).
    #[test]
    fn linearisation_error_small(
        f_rev in 300e3f64..1.0e6,
        phase_deg in 0.5f64..4.0,
    ) {
        let m = MachineParams::sis18();
        let ion = IonSpecies::n14_7plus();
        let v_hat = 8e3;
        let op = OperatingPoint::from_revolution_frequency(m, ion, f_rev, v_hat);
        let mut lin = TwoParticleMap::at_operating_point(&op);
        lin.particle = MacroParticle::from_phase_offset_deg(phase_deg, &op);
        let mut exact = ExactMap::from_linear(&lin);
        let amp = lin.particle.dt;
        let mut max_err: f64 = 0.0;
        for _ in 0..3_000 {
            let a = lin.step_stationary(v_hat, 0.0);
            let b = exact.step_stationary(v_hat, 0.0);
            max_err = max_err.max((a - b).abs());
        }
        prop_assert!(max_err < amp * 0.05, "relative deviation {}", max_err / amp);
    }

    /// The wide-lane kernel conserves mean Δγ in a stationary bucket to
    /// the same bound as the scalar libm path, over random matched
    /// ensembles — the polynomial sine introduces no secular energy drift.
    #[test]
    fn kernel_conserves_mean_dgamma_like_libm(case in matched_case(64..3_000)) {
        let (op, e) = case.build();
        let bucket = SynchrotronCalc::new(op.machine, op.ion)
            .bucket_half_height_dgamma(op.f_rev(), op.v_gap_volts)
            .unwrap();
        let run = |backend| {
            let mut tr = MultiParticleTracker::new(
                op,
                e.clone(),
                TrackerConfig { threads: 1, min_chunk: 1, backend },
            );
            let mut worst = 0.0f64;
            for _ in 0..1_000 {
                let m = tr.step(0.0);
                worst = worst.max(m.centroid_dgamma().abs());
            }
            worst
        };
        let libm = run(KernelBackend::Libm);
        let poly = run(KernelBackend::Auto);
        // The centroid of a finite matched ensemble oscillates at the
        // ~σ_Δγ/√N statistical level, so the conservation bound carries a
        // finite-N term on top of the 2% systematic one.
        let rms = (e.dgamma.iter().map(|g| g * g).sum::<f64>() / e.len() as f64).sqrt();
        let bound = bucket * 0.02 + 4.0 * rms / (e.len() as f64).sqrt();
        prop_assert!(libm < bound, "libm drift {libm} vs bound {bound}");
        prop_assert!(poly < bound, "poly drift {poly} vs bound {bound}");
        // …and the two paths agree far below that bound.
        prop_assert!(
            (poly - libm).abs() < bucket * 1e-3,
            "paths diverge: libm {libm}, poly {poly}, bucket {bucket}"
        );
    }

    /// Energy-kick antisymmetry: early and late particles with the same
    /// |Δt| get opposite kicks in a stationary bucket.
    #[test]
    fn kick_antisymmetry(dt_ns in 0.1f64..30.0) {
        let m = MachineParams::sis18();
        let ion = IonSpecies::n14_7plus();
        let op = OperatingPoint::from_revolution_frequency(m, ion, 800e3, 5e3);
        let mut late = TwoParticleMap::at_operating_point(&op);
        let mut early = TwoParticleMap::at_operating_point(&op);
        late.particle.dt = dt_ns * 1e-9;
        early.particle.dt = -dt_ns * 1e-9;
        late.step_stationary(5e3, 0.0);
        early.step_stationary(5e3, 0.0);
        prop_assert!((late.particle.dgamma + early.particle.dgamma).abs() < 1e-18);
    }
}

#[test]
fn voltage_inversion_exact_across_species() {
    for ion in ions() {
        let m = MachineParams::sis18();
        let calc = SynchrotronCalc::new(m, ion);
        for &fs in &[0.8e3, 1.28e3, 2.5e3] {
            let v = calc.voltage_for_fs(800e3, fs).unwrap();
            let fs_back = calc.fs_stationary(800e3, v).unwrap();
            assert!((fs_back - fs).abs() / fs < 1e-12, "{}", ion.name);
        }
    }
}
