//! Cross-fidelity equivalence of the [`BeamEngine`] implementations, and
//! the compiled-kernel cache's correctness guarantees — every engine runs
//! through the same [`LoopHarness`] code path, so agreement here means the
//! fidelity tiers are interchangeable views of one experiment (the paper's
//! Fig. 5 "remarkable similarity" claim, made testable).

use cavity_in_the_loop::cgra::cache::CompiledKernelCache;
use cavity_in_the_loop::cgra::kernels::build_beam_kernel_opts;
use cavity_in_the_loop::cgra::sched::ListScheduler;
use cavity_in_the_loop::engine::EngineKind;
use cavity_in_the_loop::harness::LoopHarness;
use cavity_in_the_loop::hil::TurnLevelLoop;
use cavity_in_the_loop::scenario::MdeScenario;
use cavity_in_the_loop::signalgen::PhaseJumpProgram;
use cavity_in_the_loop::sweep::parallel_sweep;
use proptest::prelude::*;
use std::sync::Arc;

fn scenario() -> MdeScenario {
    let mut s = MdeScenario::nov24_2023();
    s.duration_s = 0.1; // one full jump cycle
    s.bunches = 1;
    s
}

/// Run one engine kind through the shared harness, closed loop.
fn trace_of(kind: EngineKind, s: &MdeScenario) -> cavity_in_the_loop::harness::LoopTrace {
    let mut engine = kind.build(s).expect("engine builds for the scenario");
    let mut harness = LoopHarness::for_scenario(s, true);
    harness.run(engine.as_mut(), s.duration_s)
}

fn rms_diff(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    assert!(n > 1000, "traces long enough to compare ({n} rows)");
    let sum: f64 = a[..n]
        .iter()
        .zip(&b[..n])
        .map(|(x, y)| (x - y) * (x - y))
        .sum();
    (sum / n as f64).sqrt()
}

#[test]
fn map_and_cgra_engines_agree_within_rms_bound() {
    let s = scenario();
    let map = trace_of(EngineKind::Map, &s);
    let cgra = trace_of(EngineKind::Cgra, &s);

    assert!(map.survived() && cgra.survived());
    // Same jump schedule observed by both fidelities.
    assert_eq!(map.jump_times.len(), cgra.jump_times.len());
    for (a, b) in map.jump_times.iter().zip(&cgra.jump_times) {
        assert!(
            (a - b).abs() < 5e-6,
            "jump edges within a few turns: {a} vs {b}"
        );
    }
    // The CGRA executes the same recursive map the analytic engine steps, so
    // the closed-loop traces track each other tightly (sub-degree RMS over a
    // full 8-degree jump/damp cycle).
    let rms = rms_diff(&map.mean_phase_deg, &cgra.mean_phase_deg);
    assert!(rms < 0.8, "Map-vs-Cgra RMS = {rms} deg");
}

#[test]
fn reftrack_engine_matches_turn_level_dynamics_loosely() {
    // The multi-macro-particle reference has Landau damping the two-particle
    // map lacks, so pointwise RMS is only loosely bounded — but the response
    // shape (oscillation frequency, first-peak height) must agree, which is
    // exactly how the paper compares Fig. 5a to Fig. 5b.
    let s = scenario();
    let map = trace_of(EngineKind::Map, &s);
    let reft = trace_of(
        EngineKind::RefTrack {
            particles: 1500,
            seed: 20231124,
        },
        &s,
    );

    assert!(reft.survived());
    let rms = rms_diff(&map.mean_phase_deg, &reft.mean_phase_deg);
    assert!(rms < 4.0, "Map-vs-RefTrack RMS = {rms} deg");

    let series = |t: &cavity_in_the_loop::harness::LoopTrace| {
        cavity_in_the_loop::trace::TimeSeries::new(0.0, 1.0 / s.f_rev, t.mean_phase_deg.clone())
    };
    let t_jump = map.jump_times[0];
    let fs = |t: &cavity_in_the_loop::harness::LoopTrace| {
        series(t)
            .window(t_jump + 1e-4, t_jump + 0.045)
            .dominant_frequency(600.0, 3000.0)
            .0
    };
    let (fs_map, fs_reft) = (fs(&map), fs(&reft));
    assert!(
        (fs_map - fs_reft).abs() < 150.0,
        "fs {fs_map} vs {fs_reft} Hz"
    );
}

#[test]
fn displaced_jump_program_reports_an_event_at_t_zero() {
    // A negative path latency means the program is already displaced when
    // the run starts; the harness must stamp that edge at t = 0 rather than
    // leave `jump_times` empty (which used to panic downstream consumers
    // that index `jump_times[0]`).
    let mut s = scenario();
    s.jumps = PhaseJumpProgram {
        amplitude_deg: 8.0,
        interval_s: 0.05,
        path_latency_s: -0.06,
    };
    let result = TurnLevelLoop::new(s, EngineKind::Map).run(true).unwrap();
    assert_eq!(result.jump_times.first().copied(), Some(0.0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A cache hit hands back schedule and DFG bit-identical to what a cold
    /// compile of the same configuration produces — memoisation never
    /// changes the artifact.
    #[test]
    fn cache_hit_schedule_is_identical_to_cold_compile(
        fs_scale in 0.8f64..1.2,
        bunches in 1usize..4,
        pipelined_bit in 0u32..2,
    ) {
        let mut s = MdeScenario::nov24_2023();
        s.fs_target *= fs_scale;
        s.bunches = bunches;
        s.pipelined = pipelined_bit == 1;
        let params = s.kernel_params().unwrap();

        let cache = CompiledKernelCache::new();
        let cold = cache.get_or_compile(&params, s.bunches, s.pipelined, true, s.grid);
        let warm = cache.get_or_compile(&params, s.bunches, s.pipelined, true, s.grid);
        prop_assert_eq!((cache.hits(), cache.misses()), (1, 1));
        prop_assert!(Arc::ptr_eq(&cold, &warm), "hit returns the cached artifact");

        // Recompile from scratch, bypassing the cache entirely.
        let fresh = build_beam_kernel_opts(&params, s.bunches, s.pipelined, true);
        let fresh_schedule = ListScheduler::new(s.grid).schedule(&fresh.kernel.dfg);
        prop_assert_eq!(warm.schedule.makespan, fresh_schedule.makespan);
        prop_assert_eq!(warm.schedule.placements.len(), fresh_schedule.placements.len());
        for (node, (a, b)) in
            warm.schedule.placements.iter().zip(&fresh_schedule.placements).enumerate()
        {
            prop_assert_eq!(a, b, "placement of node {} differs on a warm hit", node);
        }
    }
}

#[test]
fn sweep_over_cgra_engines_hits_the_kernel_cache() {
    // The acceptance demonstration: repeated engine construction across a
    // sweep compiles the kernel once and reuses it. Warm the global cache
    // with one run, then every worker in the sweep must hit.
    let mut s = scenario();
    s.duration_s = 4e-3;
    let _ = trace_of(EngineKind::Cgra, &s);

    let cache = cavity_in_the_loop::cgra::cache::global();
    let (hits0, misses0) = (cache.hits(), cache.misses());

    let gains = [-2.0, -5.0, -8.0, -12.0];
    let results = parallel_sweep(&gains, 2, |&gain| {
        let mut v = s.clone();
        v.controller.gain = gain;
        let trace = trace_of(EngineKind::Cgra, &v);
        trace.mean_phase_deg.len()
    });

    assert_eq!(results.len(), gains.len());
    assert!(results.iter().all(|&rows| rows > 1000));
    let hit_delta = cache.hits() - hits0;
    assert!(
        hit_delta >= gains.len() as u64,
        "cache hits across the sweep: {hit_delta}"
    );
    // Controller settings are not part of the kernel key: no new compiles.
    assert_eq!(cache.misses(), misses0);
}
