//! Event-core acceptance tests: the deterministic event-scheduled loop.
//!
//! The harness schedules everything that observes or perturbs the closed
//! loop — controller actuation, checkpoint cadence, observer hooks,
//! wall-clock sampling, the supervisor watchdog — as [`SimEvent`]s on an
//! [`EventQueue`], and sizes every engine step block to the queue's
//! horizon. The contract under test: for *any* interleaving of event
//! cadences (deliberately coprime, so due rows land mid-block unless the
//! horizon caps them) and any block size, the recorded trace, audit
//! events, deterministic telemetry and checkpoint directory bytes are
//! bit-identical to per-turn stepping; and same-tick events fire in one
//! fixed `(tick, priority, seq)` order regardless of insertion order.

use cil_core::checkpoint::CheckpointConfig;
use cil_core::event::{EventQueue, ScheduledEvent, SimEvent};
use cil_core::fault::FaultProgram;
use cil_core::harness::{LoopHarness, LoopTrace, DEFAULT_BLOCK_ROWS};
use cil_core::hil::EngineKind;
use cil_core::signalgen::PhaseJumpProgram;
use cil_core::telemetry::TelemetrySnapshot;
use cil_core::{LoopSupervisor, MdeScenario, StepCalibration, TelemetryRegistry};
use proptest::prelude::*;
use std::path::PathBuf;

/// Block sizes spanning per-turn, sub-default, the default and
/// larger-than-any-cadence-window.
const BLOCK_SIZES: [usize; 4] = [1, 5, DEFAULT_BLOCK_ROWS, 1000];

/// Coprime to every tested block size (1, 5, 64, 1000), to the wall-sample
/// cadence (64) and to every tested decimation — due rows land mid-block
/// unless the horizon caps them.
const CKPT_CADENCE: usize = 97;

/// Observer cadence, coprime to the block sizes and decimations.
const OBSERVER_CADENCE: u64 = 3;

/// Decimations (controller actuation cadence) the interleaving sweep
/// covers, all coprime to 64 and 97 and to each other.
const DECIMATIONS: [u32; 3] = [3, 5, 7];

fn base_scenario(duration_s: f64) -> MdeScenario {
    let mut s = MdeScenario::nov24_2023();
    s.duration_s = duration_s;
    s.bunches = 1;
    s
}

/// A scenario whose cadences all collide: coprime actuation decimation, a
/// jump program toggling mid-run, and a detector-outlier storm so the
/// fault path (per-step detection + per-row corruption) is live too.
fn interleaved_scenario(decimation: u32) -> MdeScenario {
    let mut s = base_scenario(0.05);
    s.controller.decimation = decimation;
    s.jumps = PhaseJumpProgram {
        amplitude_deg: 8.0,
        interval_s: 0.02,
        path_latency_s: 0.0,
    };
    s.faults = FaultProgram::detector_outlier_storm(0.01, 0.03, 0.05, 40.0, 0xC0FFEE);
    s
}

fn assert_traces_identical(a: &LoopTrace, b: &LoopTrace, what: &str) {
    assert_eq!(a.times, b.times, "{what}: row times");
    assert_eq!(a.bunch_phase_deg, b.bunch_phase_deg, "{what}: bunch rows");
    assert_eq!(a.mean_phase_deg, b.mean_phase_deg, "{what}: mean phase");
    assert_eq!(a.control_hz, b.control_hz, "{what}: actuation");
    assert_eq!(a.jump_times, b.jump_times, "{what}: jump edges");
    assert_eq!(a.events, b.events, "{what}: audit events");
    assert_eq!(a.outcome, b.outcome, "{what}: outcome");
}

/// Drop wall-clock-derived metrics (names containing `wall`) — the only
/// part of a snapshot allowed to differ between runs of the same loop.
fn deterministic_part(snap: &TelemetrySnapshot) -> TelemetrySnapshot {
    TelemetrySnapshot {
        counters: snap
            .counters
            .iter()
            .filter(|(n, _)| !n.contains("wall"))
            .cloned()
            .collect(),
        gauges: snap
            .gauges
            .iter()
            .filter(|(n, _)| !n.contains("wall"))
            .cloned()
            .collect(),
        histograms: snap
            .histograms
            .iter()
            .filter(|(n, _)| !n.contains("wall"))
            .cloned()
            .collect(),
    }
}

fn counter(snap: &TelemetrySnapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("no counter {name}"))
        .1
}

fn ckpt_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/target/event-core-tests"
    ))
    .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Sorted (name, bytes) of every file in a checkpoint directory.
type DirBytes = Vec<(String, Vec<u8>)>;

fn dir_bytes(dir: &PathBuf) -> DirBytes {
    let mut out: DirBytes = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The tentpole property, unsupervised: coprime actuation / observer /
    /// wall-sample cadences under a live fault storm, swept over every
    /// block size — trace, events and deterministic telemetry must all be
    /// bit-identical to the per-turn (block = 1) reference.
    #[test]
    fn interleaved_cadences_are_block_size_invariant(dec_idx in 0usize..DECIMATIONS.len()) {
        let s = interleaved_scenario(DECIMATIONS[dec_idx]);
        let mut reference: Option<(LoopTrace, TelemetrySnapshot, u64)> = None;
        for block in BLOCK_SIZES {
            let registry = TelemetryRegistry::new();
            let mut engine = EngineKind::Map.build(&s).unwrap();
            let mut fired = 0u64;
            let trace = LoopHarness::for_scenario(&s, true)
                .with_telemetry(&registry)
                .with_block_rows(block)
                .unwrap()
                .run_with_every(engine.as_mut(), s.duration_s, OBSERVER_CADENCE, |_| fired += 1)
                .unwrap();
            prop_assert!(!trace.jump_times.is_empty(), "jumps toggled in-run");
            prop_assert!(!trace.events.is_empty(), "storm produced audit events");
            let snap = registry.snapshot();
            match &reference {
                None => reference = Some((trace, snap, fired)),
                Some((ref_trace, ref_snap, ref_fired)) => {
                    let what = format!("decimation={} block={block}", DECIMATIONS[dec_idx]);
                    assert_traces_identical(ref_trace, &trace, &what);
                    prop_assert_eq!(
                        deterministic_part(ref_snap),
                        deterministic_part(&snap),
                        "{}: telemetry", what
                    );
                    prop_assert_eq!(*ref_fired, fired, "{}: observer firings", what);
                }
            }
        }
    }

    /// The tentpole property, supervised + checkpointed: a coprime
    /// checkpoint cadence against coprime decimation under supervision —
    /// trace and the complete checkpoint directory bytes must be
    /// bit-identical for every block size. (No telemetry attached: every
    /// checkpoint byte is then deterministic.)
    #[test]
    fn supervised_checkpoint_bytes_are_block_size_invariant(dec_idx in 0usize..DECIMATIONS.len()) {
        let decimation = DECIMATIONS[dec_idx];
        let mut s = interleaved_scenario(decimation);
        s.duration_s = 0.02;
        let mut reference: Option<(LoopTrace, DirBytes)> = None;
        for block in BLOCK_SIZES {
            let dir = ckpt_dir(&format!("sup-d{decimation}-b{block}"));
            let mut cfg = CheckpointConfig::new(dir.clone());
            cfg.every_turns = CKPT_CADENCE;
            let mut sup = LoopSupervisor::for_scenario(&s);
            // Pin the warmup calibration: it is wall-clock-measured and
            // serialized into every checkpoint, so byte comparison needs a
            // fixed value (the harness skips calibration when one matching
            // the fidelity is already set).
            sup.set_calibration(StepCalibration {
                kind: EngineKind::Map,
                step_seconds: 5.0e-8,
            });
            let trace = LoopHarness::for_scenario(&s, true)
                .with_block_rows(block)
                .unwrap()
                .with_checkpointing(cfg)
                .run_supervised(&s, EngineKind::Map, s.duration_s, &mut sup)
                .unwrap();
            let bytes = dir_bytes(&dir);
            prop_assert!(!bytes.is_empty(), "block={block}: checkpoints were written");
            match &reference {
                None => reference = Some((trace, bytes)),
                Some((ref_trace, ref_bytes)) => {
                    let what = format!("decimation={decimation} block={block}");
                    assert_traces_identical(ref_trace, &trace, &what);
                    prop_assert_eq!(ref_bytes, &bytes, "{}: checkpoint bytes", what);
                }
            }
        }
    }

    /// Same-tick tie-break determinism: whatever order same-tick events are
    /// inserted in, the queue pops them in the one documented priority
    /// order, and a raw sort of the [`ScheduledEvent`]s agrees (the
    /// insertion `seq` breaks any remaining tie, so the total order is
    /// fixed — never partial).
    #[test]
    fn same_tick_events_pop_in_one_fixed_order(seed in 0u64..u64::MAX / 2) {
        // Fisher–Yates over a seeded LCG: a deterministic permutation of
        // the insertion order per proptest case.
        let mut order: Vec<SimEvent> = SimEvent::ALL.to_vec();
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for i in (1..order.len()).rev() {
            order.swap(i, next() as usize % (i + 1));
        }

        let mut q = EventQueue::new();
        for &kind in &order {
            q.schedule(kind, 42);
        }
        let mut popped = Vec::new();
        while let Some(kind) = q.pop_due(42) {
            popped.push(kind);
        }
        prop_assert_eq!(popped, SimEvent::ALL.to_vec(), "insertion order {:?}", order);

        // The raw event ordering agrees and is total: same tick resolves
        // by priority, identical (tick, kind) by insertion seq.
        let mut raw: Vec<ScheduledEvent> = order
            .iter()
            .enumerate()
            .map(|(seq, &kind)| ScheduledEvent { tick: 42, kind, seq: seq as u64 })
            .collect();
        raw.sort();
        let kinds: Vec<SimEvent> = raw.iter().map(|e| e.kind).collect();
        prop_assert_eq!(kinds, SimEvent::ALL.to_vec());
        for seq in 0..3u64 {
            let a = ScheduledEvent { tick: 7, kind: SimEvent::Observer, seq };
            let b = ScheduledEvent { tick: 7, kind: SimEvent::Observer, seq: seq + 1 };
            prop_assert!(a < b, "insertion seq is the final tie-break");
        }
    }
}

/// A sampled observer fires exactly `floor(rows / n)` times and never
/// perturbs the trace, across cadences spanning sub-block to
/// larger-than-run.
#[test]
fn sampled_observer_cadences_fire_exactly_and_identically() {
    let s = base_scenario(0.02);
    let mut engine = EngineKind::Map.build(&s).unwrap();
    let reference = LoopHarness::for_scenario(&s, true).run(engine.as_mut(), s.duration_s);
    for every in [1u64, 7, 64, 997, 1_000_000] {
        let mut engine = EngineKind::Map.build(&s).unwrap();
        let mut fired = 0u64;
        let trace = LoopHarness::for_scenario(&s, true)
            .run_with_every(engine.as_mut(), s.duration_s, every, |_| fired += 1)
            .unwrap();
        assert_eq!(
            fired,
            trace.times.len() as u64 / every,
            "cadence {every}: firings"
        );
        assert_traces_identical(&reference, &trace, &format!("cadence {every}"));
    }
}

/// The exported event tallies agree with what an auditor derives from the
/// trace: actuations = rows / decimation, observer firings = rows /
/// cadence, wall samples = rows / 64, jump edges = recorded jump times,
/// and each cadence kind holds the scheduled = fired + 1 invariant (the
/// final occurrence is still armed when the run ends).
#[test]
fn event_tallies_match_the_trace() {
    let s = base_scenario(0.02);
    let registry = TelemetryRegistry::new();
    let mut engine = EngineKind::Map.build(&s).unwrap();
    let trace = LoopHarness::for_scenario(&s, true)
        .with_telemetry(&registry)
        .run_with_every(engine.as_mut(), s.duration_s, OBSERVER_CADENCE, |_| {})
        .unwrap();
    let snap = registry.snapshot();
    let rows = trace.times.len() as u64;
    let decimation = u64::from(s.controller.decimation);
    let fired = |kind: &str| counter(&snap, &format!("cil_events_fired_total{{kind=\"{kind}\"}}"));
    let scheduled = |kind: &str| {
        counter(
            &snap,
            &format!("cil_events_scheduled_total{{kind=\"{kind}\"}}"),
        )
    };
    assert_eq!(fired("actuation"), rows / decimation);
    assert_eq!(fired("observer"), rows / OBSERVER_CADENCE);
    assert_eq!(fired("wall_sample"), rows / 64);
    assert_eq!(fired("jump_edge"), trace.jump_times.len() as u64);
    assert_eq!(fired("fault_edge"), 0, "clean run has no fault edges");
    assert_eq!(fired("watchdog"), 0, "unsupervised run has no watchdog");
    assert_eq!(fired("checkpoint"), 0, "no checkpointing configured");
    for kind in ["actuation", "observer", "wall_sample"] {
        assert_eq!(
            scheduled(kind),
            fired(kind) + 1,
            "{kind}: the final occurrence is still armed at run end"
        );
    }
    let depth = snap
        .gauges
        .iter()
        .find(|(n, _)| n == "cil_events_queue_depth{checkpointing=\"off\"}")
        .expect("queue depth gauge exported")
        .1;
    assert_eq!(depth, 3.0, "actuation + observer + wall sample stay armed");
}

/// Invalid event cadences are typed config errors, not silent clamps.
#[test]
fn zero_cadences_are_rejected_as_config_errors() {
    let s = base_scenario(0.01);
    assert!(LoopHarness::for_scenario(&s, true)
        .with_block_rows(0)
        .is_err());
    let mut cfg = CheckpointConfig::new(ckpt_dir("zero-cadence"));
    cfg.every_turns = 0;
    assert!(cfg.validate().is_err());
    let mut cfg = CheckpointConfig::new(ckpt_dir("zero-keep"));
    cfg.keep = 0;
    assert!(cfg.validate().is_err());
    let mut engine = EngineKind::Map.build(&s).unwrap();
    assert!(LoopHarness::for_scenario(&s, true)
        .run_with_every(engine.as_mut(), s.duration_s, 0, |_| {})
        .is_err());
}

/// A zero checkpoint cadence aborts `run_checkpointed` before any engine
/// stepping or directory I/O happens.
#[test]
fn run_checkpointed_validates_the_cadence() {
    let s = base_scenario(0.01);
    let dir = ckpt_dir("invalid-run");
    let mut cfg = CheckpointConfig::new(dir.clone());
    cfg.every_turns = 0;
    let err = LoopHarness::for_scenario(&s, true)
        .with_checkpointing(cfg)
        .run_checkpointed(&s, EngineKind::Map, s.duration_s);
    assert!(err.is_err(), "cadence 0 must be rejected");
    assert!(!dir.exists(), "no checkpoint directory for a rejected run");
}
