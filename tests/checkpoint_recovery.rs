//! Checkpoint / crash-recovery acceptance tests.
//!
//! The headline claim: a closed-loop run killed at an arbitrary turn —
//! including mid-fault-storm and across a fidelity demotion — and resumed
//! from its checkpoint directory converges to the *bit-identical* final
//! state: same trace rows, same audit events, same deterministic telemetry
//! as an uninterrupted run. A corrupted or truncated newest snapshot is
//! detected, audited as [`LoopEvent::CheckpointRejected`], and recovery
//! falls back to the previous good snapshot. The decoder never panics on
//! hostile bytes, and (release builds) checkpointing at the default cadence
//! costs ~1.08x wall-clock on a quiet machine, bounded at 1.25x
//! (`results/BENCH_checkpoint.json`).

use cil_core::checkpoint::{decode_snapshot, decode_trace_log, CheckpointConfig, CheckpointError};
use cil_core::engine::MapEngine;
use cil_core::fault::{FaultEvent, FaultKind, FaultProgram, LoopEvent};
use cil_core::harness::{LoopHarness, LoopTrace};
use cil_core::hil::EngineKind;
use cil_core::signalgen::PhaseJumpProgram;
use cil_core::telemetry::TelemetrySnapshot;
use cil_core::{CilError, LoopSupervisor, MdeScenario, TelemetryRegistry};
use proptest::prelude::*;
use std::path::PathBuf;

/// Fresh per-test checkpoint directory under the target tree (no tempfile
/// dependency; `CheckpointSession::begin` clears stale state on reuse).
fn ckpt_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/target/ckpt-tests")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Everything in a snapshot except wall-clock metrics (allowed to differ
/// between identical runs) and checkpoint-op metrics (which differ by
/// construction between an interrupted and an uninterrupted run).
fn deterministic_part(snap: &TelemetrySnapshot) -> TelemetrySnapshot {
    let keep = |n: &str| !n.contains("wall") && !n.contains("checkpoint");
    TelemetrySnapshot {
        counters: snap
            .counters
            .iter()
            .filter(|(n, _)| keep(n))
            .cloned()
            .collect(),
        gauges: snap
            .gauges
            .iter()
            .filter(|(n, _)| keep(n))
            .cloned()
            .collect(),
        histograms: snap
            .histograms
            .iter()
            .filter(|(n, _)| keep(n))
            .cloned()
            .collect(),
    }
}

/// Assert two traces are bit-identical, field by field (f64 equality is
/// exact — the whole point of the checkpoint layer).
fn assert_traces_identical(a: &LoopTrace, b: &LoopTrace) {
    assert_eq!(a.times, b.times, "row times");
    assert_eq!(a.bunch_phase_deg, b.bunch_phase_deg, "bunch rows");
    assert_eq!(a.mean_phase_deg, b.mean_phase_deg, "mean phase");
    assert_eq!(a.control_hz, b.control_hz, "actuation");
    assert_eq!(a.jump_times, b.jump_times, "jump edges");
    assert_eq!(a.events, b.events, "audit events");
    assert_eq!(a.outcome, b.outcome, "outcome");
}

/// A persistent (non-toggling within the run) jump at `t0`.
fn persistent_jump(amplitude_deg: f64, t0: f64) -> PhaseJumpProgram {
    PhaseJumpProgram {
        amplitude_deg,
        interval_s: 10.0,
        path_latency_s: -(10.0 - t0),
    }
}

fn base_scenario(duration_s: f64) -> MdeScenario {
    let mut s = MdeScenario::nov24_2023();
    s.duration_s = duration_s;
    s.bunches = 1;
    s
}

/// Detector-outlier storm covering the tail of the run.
fn storm_scenario() -> MdeScenario {
    let mut s = base_scenario(0.04);
    s.jumps = persistent_jump(15.0, 0.008);
    s.faults = FaultProgram::detector_outlier_storm(0.01, 0.04, 0.08, 120.0, 0xBAD5EED);
    s
}

/// Forced deadline overruns from 10 ms on: the supervised CGRA run demotes
/// to the analytic map mid-run.
fn demotion_scenario() -> MdeScenario {
    let mut s = base_scenario(0.05);
    s.faults = FaultProgram {
        seed: 0,
        events: vec![FaultEvent {
            start_s: 0.01,
            end_s: 0.05,
            kind: FaultKind::DeadlineOverrun { factor: 3.0 },
        }],
    };
    s
}

fn config(dir: PathBuf, every_turns: usize) -> CheckpointConfig {
    let mut cfg = CheckpointConfig::new(dir);
    cfg.every_turns = every_turns;
    cfg
}

// ---------------------------------------------------------------------------
// Kill-and-resume bit-identity
// ---------------------------------------------------------------------------

/// One unsupervised kill-and-resume round trip; returns (reference trace +
/// telemetry, resumed trace + telemetry).
fn unsupervised_round_trip(
    s: &MdeScenario,
    dir: PathBuf,
    every_turns: usize,
    cut_s: f64,
) -> (
    (LoopTrace, TelemetrySnapshot),
    (LoopTrace, TelemetrySnapshot),
) {
    // Reference: uninterrupted, no checkpointing at all — proves the
    // checkpoint layer never perturbs the dynamics.
    let ref_reg = TelemetryRegistry::new();
    let mut engine = MapEngine::from_scenario(s).unwrap();
    let mut harness = LoopHarness::for_scenario(s, true).with_telemetry(&ref_reg);
    let reference = harness.run(&mut engine, s.duration_s);

    // "Kill": run with checkpointing, but stop at `cut_s`. All checkpoint
    // I/O is atomic and happens at cadence boundaries, so the directory is
    // byte-identical to one left behind by a SIGKILL at that instant.
    let mut harness = LoopHarness::for_scenario(s, true)
        .with_telemetry(&TelemetryRegistry::new())
        .with_checkpointing(config(dir.clone(), every_turns));
    let _ = harness.run_checkpointed(s, EngineKind::Map, cut_s).unwrap();

    // Resume in a *fresh* harness (new process, as far as state goes).
    let res_reg = TelemetryRegistry::new();
    let mut harness = LoopHarness::for_scenario(s, true)
        .with_telemetry(&res_reg)
        .with_checkpointing(config(dir, every_turns));
    let resumed = harness.resume_from(s, s.duration_s).unwrap();

    (
        (reference, ref_reg.snapshot()),
        (resumed, res_reg.snapshot()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Kill the unsupervised loop at a proptest-chosen turn, resume, and
    /// compare everything bit-for-bit against an uninterrupted run.
    #[test]
    fn kill_and_resume_is_bit_identical(kill_frac in 0.2f64..0.9) {
        let s = base_scenario(0.02);
        let cut_s = s.duration_s * kill_frac;
        let dir = ckpt_dir(&format!("proptest-{:03}", (kill_frac * 1000.0) as u32));
        let ((reference, ref_t), (resumed, res_t)) =
            unsupervised_round_trip(&s, dir, 128, cut_s);
        assert_traces_identical(&reference, &resumed);
        prop_assert_eq!(deterministic_part(&ref_t), deterministic_part(&res_t));
    }

    /// Same property with the kill landing *inside a detector-outlier
    /// storm*, under supervision: the injector RNG stream, the
    /// supervisor's hold-last-good state and the rejection audit all cross
    /// the cut bit-exact.
    #[test]
    fn kill_mid_storm_resumes_bit_identical(kill_frac in 0.3f64..0.95) {
        let s = storm_scenario();
        // Storm occupies [0.01, 0.04) — these fractions all land inside.
        let cut_s = s.duration_s * kill_frac;
        let dir = ckpt_dir(&format!("storm-{:03}", (kill_frac * 1000.0) as u32));

        let ref_reg = TelemetryRegistry::new();
        let mut harness = LoopHarness::for_scenario(&s, true).with_telemetry(&ref_reg);
        let mut sup = LoopSupervisor::for_scenario(&s);
        let reference = harness
            .run_supervised(&s, EngineKind::Map, s.duration_s, &mut sup)
            .unwrap();
        assert!(
            reference.events.iter().any(|e| matches!(e, LoopEvent::OutlierRejected { .. })),
            "storm produced rejections"
        );

        let mut harness = LoopHarness::for_scenario(&s, true)
            .with_telemetry(&TelemetryRegistry::new())
            .with_checkpointing(config(dir.clone(), 256));
        let mut sup = LoopSupervisor::for_scenario(&s);
        let _ = harness.run_supervised(&s, EngineKind::Map, cut_s, &mut sup).unwrap();

        let res_reg = TelemetryRegistry::new();
        let mut harness = LoopHarness::for_scenario(&s, true)
            .with_telemetry(&res_reg)
            .with_checkpointing(config(dir, 256));
        let mut sup = LoopSupervisor::for_scenario(&s);
        let resumed = harness.resume_supervised_from(&s, s.duration_s, &mut sup).unwrap();

        assert_traces_identical(&reference, &resumed);
        prop_assert_eq!(deterministic_part(&ref_reg.snapshot()), deterministic_part(&res_reg.snapshot()));
    }
}

/// Kill the supervised CGRA run on both sides of its mid-run demotion to
/// the map engine. Resuming after the demotion must rebuild the *demoted*
/// fidelity (the snapshot records the kind currently running), carrying
/// the accumulated control phase across.
#[test]
fn kill_across_demotion_resumes_bit_identical() {
    let s = demotion_scenario();

    let mut harness = LoopHarness::for_scenario(&s, true);
    let mut sup = LoopSupervisor::for_scenario(&s);
    let reference = harness
        .run_supervised(&s, EngineKind::Cgra, s.duration_s, &mut sup)
        .unwrap();
    let demotion_t = reference
        .events
        .iter()
        .find_map(|e| match *e {
            LoopEvent::EngineDemoted { time_s, .. } => Some(time_s),
            _ => None,
        })
        .expect("reference run demoted");

    for (tag, cut_s) in [("before", demotion_t * 0.6), ("after", s.duration_s * 0.7)] {
        assert!(
            (tag == "before") == (cut_s < demotion_t),
            "cut {cut_s} vs demotion {demotion_t}"
        );
        let dir = ckpt_dir(&format!("demotion-{tag}"));
        let mut harness =
            LoopHarness::for_scenario(&s, true).with_checkpointing(config(dir.clone(), 256));
        let mut sup = LoopSupervisor::for_scenario(&s);
        let _ = harness
            .run_supervised(&s, EngineKind::Cgra, cut_s, &mut sup)
            .unwrap();

        let mut harness = LoopHarness::for_scenario(&s, true).with_checkpointing(config(dir, 256));
        let mut sup = LoopSupervisor::for_scenario(&s);
        let resumed = harness
            .resume_supervised_from(&s, s.duration_s, &mut sup)
            .unwrap();
        assert_traces_identical(&reference, &resumed);
    }
}

/// Sorted (name, bytes) of every file in a checkpoint directory.
fn dir_bytes(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    out.sort();
    out
}

/// RefTrack kill-and-resume through the *intra-step parallel* path: the
/// checkpointed run splits every revolution across 8 worker threads, the
/// resume rebuilds with the default (sequential on this box) configuration.
/// Both the CILCKPT bytes and the resumed trace must be bit-identical —
/// the kernel's fixed chunk boundaries and fixed-tree reduction are what
/// make the parallel step checkpoint-transparent.
#[test]
fn reftrack_parallel_step_checkpoints_bit_identical() {
    use cil_core::engine::RefTrackEngine;
    use cil_reftrack::kernel::KernelBackend;
    use cil_reftrack::TrackerConfig;

    let s = base_scenario(0.004);
    let kind = EngineKind::RefTrack {
        particles: 2048,
        seed: 7,
    };
    let parallel = TrackerConfig {
        threads: 8,
        min_chunk: 64,
        backend: KernelBackend::Auto,
    };

    // Reference: uninterrupted, default workers, no checkpointing.
    let mut engine = kind.build(&s).unwrap();
    let reference = LoopHarness::for_scenario(&s, true).run(engine.as_mut(), s.duration_s);

    // Full checkpointed runs, sequential vs 8-thread: the CILCKPT bytes on
    // disk must not depend on the worker configuration.
    let mut dirs = Vec::new();
    for (tag, threads) in [("seq", 1usize), ("par", 8)] {
        let dir = ckpt_dir(&format!("reftrack-{tag}"));
        let mut engine = RefTrackEngine::from_scenario(&s, 2048, 7, 15e-9, 0.0).unwrap();
        engine.set_tracker_config(TrackerConfig {
            threads,
            ..parallel
        });
        let mut harness =
            LoopHarness::for_scenario(&s, true).with_checkpointing(config(dir.clone(), 256));
        let trace = harness
            .run_checkpointed_with(&mut engine, kind, s.duration_s)
            .unwrap();
        assert_traces_identical(&reference, &trace);
        dirs.push(dir);
    }
    assert_eq!(
        dir_bytes(&dirs[0]),
        dir_bytes(&dirs[1]),
        "CILCKPT bytes differ between sequential and parallel steps"
    );

    // Kill mid-run on the parallel path, resume in a fresh harness (which
    // rebuilds the engine with the default worker configuration).
    let dir = ckpt_dir("reftrack-kill");
    let mut engine = RefTrackEngine::from_scenario(&s, 2048, 7, 15e-9, 0.0).unwrap();
    engine.set_tracker_config(parallel);
    let mut harness =
        LoopHarness::for_scenario(&s, true).with_checkpointing(config(dir.clone(), 256));
    let _ = harness
        .run_checkpointed_with(&mut engine, kind, s.duration_s * 0.55)
        .unwrap();

    let mut harness = LoopHarness::for_scenario(&s, true).with_checkpointing(config(dir, 256));
    let resumed = harness.resume_from(&s, s.duration_s).unwrap();
    assert_traces_identical(&reference, &resumed);
}

// ---------------------------------------------------------------------------
// Corruption: fallback + audit
// ---------------------------------------------------------------------------

fn snapshot_files(dir: &std::path::Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("ckpt_") && n.ends_with(".cil"))
        })
        .collect();
    files.sort();
    files
}

/// Corrupt the newest snapshot: recovery must audit a
/// `CheckpointRejected`, fall back to the previous good snapshot, and
/// still finish with rows bit-identical to the uninterrupted run.
#[test]
fn corrupted_newest_checkpoint_falls_back_and_audits() {
    let s = base_scenario(0.02);
    let dir = ckpt_dir("corrupt-newest");

    let mut engine = MapEngine::from_scenario(&s).unwrap();
    let mut harness = LoopHarness::for_scenario(&s, true);
    let reference = harness.run(&mut engine, s.duration_s);

    let mut harness =
        LoopHarness::for_scenario(&s, true).with_checkpointing(config(dir.clone(), 128));
    let _ = harness
        .run_checkpointed(&s, EngineKind::Map, s.duration_s * 0.6)
        .unwrap();

    let files = snapshot_files(&dir);
    assert!(files.len() >= 2, "rolling retention kept a fallback");
    let newest = files.last().unwrap();
    let mut bytes = std::fs::read(newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(newest, &bytes).unwrap();

    let mut harness = LoopHarness::for_scenario(&s, true).with_checkpointing(config(dir, 128));
    let resumed = harness.resume_from(&s, s.duration_s).unwrap();

    let rejections: Vec<&LoopEvent> = resumed
        .events
        .iter()
        .filter(|e| matches!(e, LoopEvent::CheckpointRejected { .. }))
        .collect();
    assert_eq!(rejections.len(), 1, "exactly one rejected snapshot audited");

    // Everything except the audit entry matches the uninterrupted run.
    assert_eq!(reference.times, resumed.times);
    assert_eq!(reference.bunch_phase_deg, resumed.bunch_phase_deg);
    assert_eq!(reference.mean_phase_deg, resumed.mean_phase_deg);
    assert_eq!(reference.control_hz, resumed.control_hz);
    assert_eq!(reference.jump_times, resumed.jump_times);
    let without_rejections: Vec<&LoopEvent> = resumed
        .events
        .iter()
        .filter(|e| !matches!(e, LoopEvent::CheckpointRejected { .. }))
        .collect();
    assert_eq!(
        without_rejections,
        reference.events.iter().collect::<Vec<_>>()
    );
    assert!(resumed.survived());
}

/// Truncating (rather than bit-flipping) the newest snapshot hits the
/// length-check path instead of the CRC path — same observable fallback.
#[test]
fn truncated_newest_checkpoint_falls_back() {
    let s = base_scenario(0.02);
    let dir = ckpt_dir("truncate-newest");
    let mut harness =
        LoopHarness::for_scenario(&s, true).with_checkpointing(config(dir.clone(), 128));
    let _ = harness
        .run_checkpointed(&s, EngineKind::Map, s.duration_s * 0.6)
        .unwrap();

    let files = snapshot_files(&dir);
    let newest = files.last().unwrap();
    let bytes = std::fs::read(newest).unwrap();
    std::fs::write(newest, &bytes[..bytes.len() / 3]).unwrap();

    let mut harness = LoopHarness::for_scenario(&s, true).with_checkpointing(config(dir, 128));
    let resumed = harness.resume_from(&s, s.duration_s).unwrap();
    assert!(resumed.survived());
    assert_eq!(
        resumed
            .events
            .iter()
            .filter(|e| matches!(e, LoopEvent::CheckpointRejected { .. }))
            .count(),
        1
    );
}

/// With *every* snapshot corrupted, resume fails with a typed error — it
/// must not panic, hang, or fabricate state.
#[test]
fn all_snapshots_corrupted_is_a_typed_error() {
    let s = base_scenario(0.01);
    let dir = ckpt_dir("corrupt-all");
    let mut harness =
        LoopHarness::for_scenario(&s, true).with_checkpointing(config(dir.clone(), 128));
    let _ = harness
        .run_checkpointed(&s, EngineKind::Map, s.duration_s)
        .unwrap();

    for file in snapshot_files(&dir) {
        let mut bytes = std::fs::read(&file).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&file, &bytes).unwrap();
    }

    let mut harness = LoopHarness::for_scenario(&s, true).with_checkpointing(config(dir, 128));
    let err = harness.resume_from(&s, s.duration_s).unwrap_err();
    assert!(
        matches!(err, CilError::Checkpoint(CheckpointError::NoCheckpoint)),
        "got {err:?}"
    );
}

/// A supervised checkpoint refuses the unsupervised resume entry point
/// (and vice versa) with a typed incompatibility, not silent misbehaviour.
#[test]
fn mismatched_resume_entry_point_is_rejected() {
    let s = base_scenario(0.01);
    let dir = ckpt_dir("mismatched-entry");
    let mut harness =
        LoopHarness::for_scenario(&s, true).with_checkpointing(config(dir.clone(), 128));
    let mut sup = LoopSupervisor::for_scenario(&s);
    let _ = harness
        .run_supervised(&s, EngineKind::Map, s.duration_s, &mut sup)
        .unwrap();

    let mut harness = LoopHarness::for_scenario(&s, true).with_checkpointing(config(dir, 128));
    let err = harness.resume_from(&s, s.duration_s).unwrap_err();
    assert!(
        matches!(err, CilError::Checkpoint(CheckpointError::Incompatible(_))),
        "got {err:?}"
    );
}

// ---------------------------------------------------------------------------
// Decoder fuzzing: hostile bytes never panic
// ---------------------------------------------------------------------------

/// A real snapshot file's bytes, produced once per process.
fn real_snapshot_bytes() -> Vec<u8> {
    let s = base_scenario(0.005);
    let dir = ckpt_dir("fuzz-source");
    let mut harness =
        LoopHarness::for_scenario(&s, true).with_checkpointing(config(dir.clone(), 128));
    let _ = harness
        .run_checkpointed(&s, EngineKind::Map, s.duration_s)
        .unwrap();
    let files = snapshot_files(&dir);
    std::fs::read(files.last().unwrap()).unwrap()
}

#[test]
fn zero_length_and_header_only_files_are_typed_errors() {
    assert!(matches!(
        decode_snapshot(&[]),
        Err(CheckpointError::TooShort)
    ));
    assert!(matches!(
        decode_snapshot(b"CILCKPT\0"),
        Err(CheckpointError::TooShort)
    ));
    assert!(matches!(
        decode_snapshot(&[0u8; 64]),
        Err(CheckpointError::BadMagic)
    ));
    let mut wrong_version = real_snapshot_bytes();
    wrong_version[8..12].copy_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        decode_snapshot(&wrong_version),
        Err(CheckpointError::UnsupportedVersion(99))
    ));
    assert!(decode_trace_log(&[]).is_ok(), "empty log is zero blocks");
    assert!(decode_trace_log(&[0x42; 5]).is_err(), "torn block header");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncate a real snapshot anywhere: typed error, never a panic and
    /// never a bogus success.
    #[test]
    fn truncated_snapshot_never_panics(frac in 0.0f64..1.0) {
        let bytes = real_snapshot_bytes();
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        prop_assert!(decode_snapshot(&bytes[..cut]).is_err());
    }

    /// Flip any single bit of a real snapshot: decode must either reject
    /// it (typed) — or, only for flips inside the 8-byte declared-length
    /// field that happen to keep framing consistent, it may never succeed
    /// silently. CRC covers the payload, so payload flips always reject.
    #[test]
    fn flipped_byte_never_panics(pos_frac in 0.0f64..1.0, bit in 0u32..8) {
        let mut bytes = real_snapshot_bytes();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1u8 << bit;
        // Must not panic; a flip is allowed to be *detected* in different
        // ways, but never accepted as a different valid checkpoint.
        prop_assert!(decode_snapshot(&bytes).is_err());
    }

    /// Hostile random prefixes against the trace-log decoder.
    #[test]
    fn random_trace_log_bytes_never_panic(seed in 0u64..u64::MAX / 2, len in 0usize..256) {
        let mut state = seed | 1;
        let bytes: Vec<u8> = (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 56) as u8
            })
            .collect();
        let _ = decode_trace_log(&bytes); // any Result is fine; panics are not
    }
}

// ---------------------------------------------------------------------------
// Overhead guard (release only)
// ---------------------------------------------------------------------------

/// Checkpointing at the default cadence costs ~1.08x wall-clock on a
/// realistic (multi-particle) workload, bounded at 1.25x to ride out
/// shared-runner I/O contention. Debug builds skew the
/// encode/step cost ratio, so the guard is release-only; it emits
/// `results/BENCH_checkpoint.json` either way it runs.
#[cfg(not(debug_assertions))]
#[test]
fn checkpoint_overhead_bounded() {
    let mut s = base_scenario(0.02);
    s.bunches = 1;
    let kind = EngineKind::RefTrack {
        particles: 2048,
        seed: 7,
    };
    let rows = s.revolutions();
    let dir = ckpt_dir("overhead");

    let time_run = |checkpoint: bool| -> f64 {
        let mut harness = LoopHarness::for_scenario(&s, true);
        if checkpoint {
            // Default cadence + retention (CheckpointConfig::new).
            harness = harness.with_checkpointing(CheckpointConfig::new(dir.clone()));
        }
        let t0 = std::time::Instant::now();
        let trace = harness.run_checkpointed(&s, kind, s.duration_s).unwrap();
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(trace.times.len(), rows);
        dt
    };
    // Interleave the arms and take the best of each: with ~0.3 s runs the
    // per-run noise on a shared machine is comparable to the ~8% overhead
    // being measured, and sequential arms pick up a systematic drift bias
    // (the later arm runs on a warmer/more-throttled machine). Pairing
    // disabled/enabled back-to-back exposes both arms to the same drift.
    // A measurement above the quiet-machine value (~1.08x) is retried up
    // to twice in the hope of catching a quiet window; the hard bound is
    // 1.25x, loose enough that shared-runner I/O contention (observed to
    // push the ratio to ~1.1-1.15x) cannot fail the guard while any real
    // regression in checkpoint cost still does.
    let _ = time_run(false); // warmup
    let _ = time_run(true); // warmup (page-caches the checkpoint dir)
    let mut disabled = f64::INFINITY;
    let mut enabled = f64::INFINITY;
    let mut ratio = f64::INFINITY;
    let mut pairs = 0;
    for _attempt in 0..3 {
        for _ in 0..3 {
            disabled = disabled.min(time_run(false));
            enabled = enabled.min(time_run(true));
            pairs += 1;
        }
        ratio = enabled / disabled;
        if ratio < 1.10 {
            break;
        }
    }

    std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/results")).unwrap();
    std::fs::write(
        concat!(env!("CARGO_MANIFEST_DIR"), "/results/BENCH_checkpoint.json"),
        format!(
            "{{\"bench\":\"checkpoint_overhead\",\"engine\":\"reftrack2048\",\
             \"revolutions\":{rows},\"cadence\":256,\"runs\":{pairs},\
             \"disabled_wall_s\":{disabled},\"enabled_wall_s\":{enabled},\
             \"ratio\":{ratio},\"bound\":1.25}}\n"
        ),
    )
    .unwrap();

    assert!(
        ratio < 1.25,
        "checkpoint overhead {ratio:.3}x (enabled {enabled:.6}s vs disabled {disabled:.6}s)"
    );
}
