//! Integration + property tests for the CGRA toolchain: C source → DFG →
//! schedule → context memories → execution, with the executor checked
//! against direct DFG interpretation on randomly generated kernels.

use cavity_in_the_loop::cgra::context::ContextMemories;
use cavity_in_the_loop::cgra::exec::{interpret_dfg, CgraExecutor, MapBus};
use cavity_in_the_loop::cgra::frontend::compile;
use cavity_in_the_loop::cgra::grid::{GridConfig, Topology};
use cavity_in_the_loop::cgra::sched::ListScheduler;
use proptest::prelude::*;

/// Generate a random — but always valid — kernel source: a chain of
/// arithmetic statements over locals, statics and sensors.
fn random_kernel_source(ops: &[u8]) -> String {
    let mut src = String::from(
        "static float s0 = 1.5f;\nstatic float s1 = -0.25f;\nfor (;;) {\n  float v0 = read_sensor(0, 0.0f);\n  float v1 = 2.0f;\n",
    );
    let mut next = 2usize;
    for (i, &op) in ops.iter().enumerate() {
        let a = format!("v{}", i % next);
        let b = format!("v{}", (i * 7 + 1) % next);
        let expr = match op % 8 {
            0 => format!("{a} + {b}"),
            1 => format!("{a} - {b}"),
            2 => format!("{a} * 0.5f + {b}"),
            3 => format!("{a} / ({b} * {b} + 1.0f)"),
            4 => format!("sqrtf({a} * {a} + 1.0f)"),
            5 => format!("fminf({a}, {b})"),
            6 => format!("select({a} < {b}, {a}, {b})"),
            _ => format!("fabsf({a}) + s0 * 0.125f"),
        };
        src.push_str(&format!("  float v{next} = {expr};\n"));
        next += 1;
    }
    src.push_str(&format!("  s0 = v{} * 0.5f + s1;\n", next - 1));
    src.push_str(&format!("  s1 = s1 * 0.9f + v{} * 0.01f;\n", next / 2));
    src.push_str(&format!("  write_actuator(0, v{});\n", next - 1));
    src.push_str("}\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The scheduled executor agrees exactly with direct interpretation on
    /// arbitrary kernels, grids and sensor streams, over several iterations
    /// of loop-carried state.
    #[test]
    fn executor_matches_interpreter(
        ops in prop::collection::vec(any::<u8>(), 1..24),
        rows in 2u16..5,
        cols in 2u16..5,
        topo_idx in 0usize..3,
        sensor_vals in prop::collection::vec(-10.0f64..10.0, 5),
    ) {
        let src = random_kernel_source(&ops);
        let kernel = compile(&src).expect("generated source is valid");
        let topo = [Topology::Mesh, Topology::MeshDiagonal, Topology::Torus][topo_idx];
        let grid = GridConfig { topology: topo, ..GridConfig::mesh(rows, cols) };
        let schedule = ListScheduler::new(grid).schedule(&kernel.dfg);
        schedule.validate(&kernel.dfg).expect("schedule valid");

        let mut ex = CgraExecutor::new(kernel.dfg.clone(), schedule);
        let mut regs = vec![0.0f64; kernel.dfg.reg_count() as usize];
        for &(r, v) in &kernel.reg_inits {
            ex.set_reg(r, v);
            regs[r as usize] = v;
        }
        for &sv in &sensor_vals {
            let mut bus_a = MapBus::default();
            let mut bus_b = MapBus::default();
            bus_a.set_sensor(0, sv);
            bus_b.set_sensor(0, sv);
            let out_a = ex.run_iteration(&mut bus_a, &[]);
            let out_b = interpret_dfg(&kernel.dfg, &mut regs, &mut bus_b, &[]);
            // Exact equality: same operations in dependency order, no
            // reassociation anywhere.
            prop_assert_eq!(out_a, out_b);
            prop_assert_eq!(bus_a.writes, bus_b.writes);
        }
    }

    /// Context memories survive the pack/unpack byte roundtrip for any
    /// kernel/grid combination.
    #[test]
    fn context_roundtrip(
        ops in prop::collection::vec(any::<u8>(), 1..16),
        size in 2u16..5,
    ) {
        let src = random_kernel_source(&ops);
        let kernel = compile(&src).expect("valid source");
        let schedule = ListScheduler::new(GridConfig::mesh(size, size)).schedule(&kernel.dfg);
        let ctx = ContextMemories::from_schedule(&kernel.dfg, &schedule);
        let img = ctx.pack();
        let back = ContextMemories::unpack(&img).unwrap();
        prop_assert_eq!(back.makespan, ctx.makespan);
        prop_assert_eq!(back.per_pe, ctx.per_pe);
    }

    /// The pipeline-split transform never changes single-stage kernels and
    /// always removes stage-crossing edges from two-stage kernels.
    #[test]
    fn pipeline_split_invariants(ops in prop::collection::vec(any::<u8>(), 1..16)) {
        let src = random_kernel_source(&ops);
        let kernel = compile(&src).expect("valid source");
        // No pipeline_stage() marker in the generated source: split is a
        // structural no-op (same node count, no new registers).
        let split = kernel.dfg.pipeline_split();
        prop_assert_eq!(split.len(), kernel.dfg.len());
        prop_assert_eq!(split.reg_count(), kernel.dfg.reg_count());
    }
}

#[test]
fn scheduler_respects_every_grid_shape() {
    // Deterministic sweep: the beam kernel schedules and validates on a
    // range of plausible grids, including degenerate 1-row shapes.
    let src = random_kernel_source(&[0, 1, 2, 3, 4, 5, 6, 7]);
    let kernel = compile(&src).unwrap();
    for (r, c) in [(1u16, 4u16), (4, 1), (2, 3), (3, 2), (6, 6)] {
        let schedule = ListScheduler::new(GridConfig::mesh(r, c)).schedule(&kernel.dfg);
        schedule
            .validate(&kernel.dfg)
            .unwrap_or_else(|e| panic!("{r}x{c}: {e}"));
    }
}
