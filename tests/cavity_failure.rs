//! Cavity-failure chaos suite.
//!
//! The headline claims of the degraded-plant layer: (1) for a mid-run
//! cavity quench, `VoltageRematch` compensation strictly extends the
//! beam-loss turn over no policy on the same seed, (2) the compensated
//! trajectory replays bit-identically across engine block sizes {1, 64,
//! 1000} and across a checkpoint kill-and-resume *inside* the quench
//! window, (3) a zero-amplitude cavity program is bit-identical to a
//! fault-free run, and (4) the quench → sag → compensate → lose ladder
//! plays out consistently across engine fidelities.

use cil_core::checkpoint::CheckpointConfig;
use cil_core::fault::{FaultProgram, LoopEvent, LossCause};
use cil_core::harness::{LoopHarness, LoopTrace};
use cil_core::hil::EngineKind;
use cil_core::signalgen::PhaseJumpProgram;
use cil_core::{CompensationPolicy, LoopOutcome, LoopSupervisor, MdeScenario, SignalLevelLoop};
use std::path::PathBuf;

fn ckpt_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/target/ckpt-tests")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A persistent (non-toggling within the run) jump at `t0`.
fn persistent_jump(amplitude_deg: f64, t0: f64) -> PhaseJumpProgram {
    PhaseJumpProgram {
        amplitude_deg,
        interval_s: 10.0,
        path_latency_s: -(10.0 - t0),
    }
}

/// The headline quench scenario: an 8° persistent jump at 50 ms sets the
/// beam oscillating, and 0.2 ms later — near peak energy swing — the
/// cavity quenches with a 1 ms collapse constant. The surviving voltage
/// freezes whatever synchrotron motion is left, so the beam phase drifts
/// out of the (vanishing) bucket unless compensation buys the controller
/// time to damp the swing first.
fn quench_scenario() -> MdeScenario {
    let mut s = MdeScenario::nov24_2023();
    s.duration_s = 0.3;
    s.bunches = 1;
    s.jumps = persistent_jump(8.0, 0.05);
    s.faults = FaultProgram::cavity_quench(0.0502, 1e-3, 0xCAF0);
    s
}

fn run_supervised(
    s: &MdeScenario,
    kind: EngineKind,
    policy: CompensationPolicy,
) -> (LoopTrace, LoopSupervisor) {
    let mut harness = LoopHarness::for_scenario(s, true);
    let mut sup = LoopSupervisor::for_scenario(s);
    sup.config.compensation = policy;
    let trace = harness
        .run_supervised(s, kind, s.duration_s, &mut sup)
        .expect("supervised run completes");
    (trace, sup)
}

fn loss_turn(trace: &LoopTrace) -> usize {
    match trace.outcome {
        LoopOutcome::Lost {
            turn,
            cause: LossCause::CavityFault,
            ..
        } => turn,
        ref other => panic!("expected a cavity-fault loss, got {other:?}"),
    }
}

fn sag_turn(trace: &LoopTrace) -> usize {
    trace
        .events
        .iter()
        .find_map(|e| match *e {
            LoopEvent::CavitySagDetected { turn, .. } => Some(turn),
            _ => None,
        })
        .expect("sag was detected")
}

fn assert_traces_identical(a: &LoopTrace, b: &LoopTrace) {
    assert_eq!(a.times, b.times, "row times");
    assert_eq!(a.bunch_phase_deg, b.bunch_phase_deg, "bunch rows");
    assert_eq!(a.mean_phase_deg, b.mean_phase_deg, "mean phase");
    assert_eq!(a.control_hz, b.control_hz, "actuation");
    assert_eq!(a.jump_times, b.jump_times, "jump edges");
    assert_eq!(a.events, b.events, "audit events");
    assert_eq!(a.outcome, b.outcome, "outcome");
}

// ---------------------------------------------------------------------------
// The escalation ladder and the headline survival claim
// ---------------------------------------------------------------------------

#[test]
fn voltage_rematch_strictly_extends_survival_over_no_policy() {
    let s = quench_scenario();

    let (none, _) = run_supervised(&s, EngineKind::Map, CompensationPolicy::None);
    let (rematch, sup) = run_supervised(&s, EngineKind::Map, CompensationPolicy::voltage_rematch());

    // Both runs end in a declared cavity-fault loss with the turn stamped.
    let t_none = loss_turn(&none);
    let t_rematch = loss_turn(&rematch);
    assert!(
        t_rematch > t_none,
        "voltage rematch extends survival: {t_rematch} vs {t_none}"
    );

    // The ladder fired in order: sag detected, compensation engaged, beam
    // lost — all before/at the loss turn.
    let sag = sag_turn(&rematch);
    let engaged = rematch
        .events
        .iter()
        .find_map(|e| match *e {
            LoopEvent::CompensationEngaged { turn, boost, .. } => Some((turn, boost)),
            _ => None,
        })
        .expect("compensation engaged");
    assert!(sag <= engaged.0 && engaged.0 < t_rematch);
    // The quench never recovers, so the boost railed at its ceiling.
    assert_eq!(sup.commanded_boost(), 3.0);

    // Without a policy the supervisor still *detects* the sag (audit
    // channel), it just cannot act on it.
    assert!(sag_turn(&none) < t_none);
    assert!(
        !none
            .events
            .iter()
            .any(|e| matches!(e, LoopEvent::CompensationEngaged { .. })),
        "no-policy run never engages compensation"
    );
}

#[test]
fn gain_rescale_also_extends_survival() {
    let s = quench_scenario();
    let (none, _) = run_supervised(&s, EngineKind::Map, CompensationPolicy::None);
    let (rescale, sup) = run_supervised(&s, EngineKind::Map, CompensationPolicy::gain_rescale());
    assert!(
        loss_turn(&rescale) > loss_turn(&none),
        "gain rescale extends survival"
    );
    assert_eq!(sup.commanded_gain_scale(), 4.0, "gain railed at its cap");
    assert_eq!(
        sup.commanded_boost(),
        1.0,
        "gain rescale commands no voltage"
    );
}

#[test]
fn cavity_trip_recovers_and_compensation_walks_back() {
    // A 15 ms hard trip with a 10 ms recovery ramp, placed while the beam
    // is quiet: the loop rides through it and the rematch command walks
    // back to exactly 1.0 (FP-exact — the slew lands on the target) once
    // the plant is healthy again.
    let mut s = MdeScenario::nov24_2023();
    s.duration_s = 0.2;
    s.bunches = 1;
    s.faults = FaultProgram::cavity_trip(0.12, 0.135, 0.01, 0xCAF1);
    let (trace, sup) = run_supervised(&s, EngineKind::Map, CompensationPolicy::voltage_rematch());
    assert!(
        trace.outcome.survived(),
        "brief trip with rematch rides through: {:?}",
        trace.outcome
    );
    assert!(trace
        .events
        .iter()
        .any(|e| matches!(e, LoopEvent::CavitySagDetected { .. })));
    assert_eq!(
        sup.commanded_boost(),
        1.0,
        "boost walked back down after recovery"
    );
}

#[test]
fn detune_drift_is_survivable_but_not_free() {
    // A slow 20 Hz/s tune drift over 100 ms: the loop survives, but the
    // trajectory measurably differs from the fault-free run. (At a few
    // hundred Hz/s the accumulated detune phase outruns the loop and the
    // beam is declared lost to the cavity fault.)
    let mut s = MdeScenario::nov24_2023();
    s.duration_s = 0.15;
    s.bunches = 1;
    s.faults = FaultProgram::cavity_detune(0.03, 0.13, 20.0, 0xCAF2);
    let (faulty, _) = run_supervised(&s, EngineKind::Map, CompensationPolicy::None);
    assert!(faulty.outcome.survived(), "{:?}", faulty.outcome);

    let mut clean = s.clone();
    clean.faults = FaultProgram::none();
    let (reference, _) = run_supervised(&clean, EngineKind::Map, CompensationPolicy::None);
    assert_eq!(reference.times.len(), faulty.times.len());
    assert_ne!(
        reference.mean_phase_deg, faulty.mean_phase_deg,
        "the detune visibly perturbs the trajectory"
    );
}

// ---------------------------------------------------------------------------
// Determinism: replay, block sizes, kill-and-resume, noop programs
// ---------------------------------------------------------------------------

#[test]
fn compensated_replay_is_bit_identical_across_block_sizes() {
    let s = quench_scenario();
    let run = |block: usize| {
        let mut harness = LoopHarness::for_scenario(&s, true)
            .with_block_rows(block)
            .unwrap();
        let mut sup = LoopSupervisor::for_scenario(&s);
        sup.config.compensation = CompensationPolicy::voltage_rematch();
        harness
            .run_supervised(&s, EngineKind::Map, s.duration_s, &mut sup)
            .unwrap()
    };
    let reference = run(64);
    assert!(matches!(
        reference.outcome,
        LoopOutcome::Lost {
            cause: LossCause::CavityFault,
            ..
        }
    ));
    for block in [1usize, 1000] {
        assert_traces_identical(&reference, &run(block));
    }
}

#[test]
fn kill_and_resume_inside_the_quench_window_is_bit_identical() {
    let s = quench_scenario();
    let policy = CompensationPolicy::voltage_rematch();

    // Reference: uninterrupted, no checkpointing.
    let (reference, _) = run_supervised(&s, EngineKind::Map, policy);
    let t_loss = loss_turn(&reference);

    // Kill *inside* the quench window, after compensation engaged but
    // before the loss: the snapshot must carry the plant's collapse state,
    // the commanded boost and the sag latch across the cut.
    let sag = sag_turn(&reference);
    let cut_s = (sag + (t_loss - sag) / 2) as f64 / s.f_rev;
    assert!(cut_s > 0.0502 && cut_s < t_loss as f64 / s.f_rev);

    let dir = ckpt_dir("cavity-quench");
    let mut cfg = CheckpointConfig::new(dir.clone());
    cfg.every_turns = 256;
    let mut harness = LoopHarness::for_scenario(&s, true).with_checkpointing(cfg.clone());
    let mut sup = LoopSupervisor::for_scenario(&s);
    sup.config.compensation = policy;
    let _ = harness
        .run_supervised(&s, EngineKind::Map, cut_s, &mut sup)
        .unwrap();

    // Resume in a fresh harness and carry the run to its (lost) end.
    let mut harness = LoopHarness::for_scenario(&s, true).with_checkpointing(cfg);
    let mut sup = LoopSupervisor::for_scenario(&s);
    sup.config.compensation = policy;
    let resumed = harness
        .resume_supervised_from(&s, s.duration_s, &mut sup)
        .unwrap();
    assert_traces_identical(&reference, &resumed);
    assert_eq!(sup.commanded_boost(), 3.0, "boost restored across the cut");
}

#[test]
fn zero_amplitude_cavity_program_is_bit_identical_to_fault_free() {
    let mut clean = MdeScenario::nov24_2023();
    clean.duration_s = 0.05;
    clean.bunches = 1;

    // Noop by amplitude: zero drift and an infinite collapse constant.
    let mut noop = clean.clone();
    noop.faults = FaultProgram {
        seed: 7,
        events: vec![
            FaultProgram::cavity_detune(0.01, 0.05, 0.0, 7).events[0],
            FaultProgram::cavity_quench(0.01, f64::INFINITY, 7).events[0],
        ],
    };
    assert!(!noop.faults.has_cavity_faults(), "all events are noops");

    let (a, _) = run_supervised(&clean, EngineKind::Map, CompensationPolicy::None);
    let (b, _) = run_supervised(&noop, EngineKind::Map, CompensationPolicy::None);
    assert_eq!(a.times.len(), b.times.len());
    // The watchdog's modeled deadline events fire identically in both
    // runs; the noop cavity program must add nothing on top.
    assert_eq!(a.events, b.events, "noop cavity faults log nothing extra");
    for (x, y) in a.mean_phase_deg.iter().zip(&b.mean_phase_deg) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    for (x, y) in a.control_hz.iter().zip(&b.control_hz) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

#[test]
fn seeded_replay_is_deterministic() {
    let s = quench_scenario();
    let (a, _) = run_supervised(&s, EngineKind::Map, CompensationPolicy::voltage_rematch());
    let (b, _) = run_supervised(&s, EngineKind::Map, CompensationPolicy::voltage_rematch());
    assert_traces_identical(&a, &b);
    assert!(!a.events.is_empty());
}

// ---------------------------------------------------------------------------
// Cross-fidelity agreement
// ---------------------------------------------------------------------------

#[test]
fn quench_ladder_agrees_across_fidelities() {
    // The same quench + rematch program on the analytic map, the CGRA
    // kernel and the single-particle reference tracker: every fidelity
    // must see the sag at the same actuation tick, engage compensation,
    // and lose the beam to the same declared cause in the same
    // neighbourhood of turns (the engines differ in the last ulps, and a
    // near-separatrix trajectory amplifies that — the *ladder*, not the
    // exact loss turn, is the cross-fidelity contract).
    let s = quench_scenario();
    let kinds = [
        EngineKind::Map,
        EngineKind::Cgra,
        EngineKind::RefTrack {
            particles: 1,
            seed: 3,
        },
    ];
    let mut results = Vec::new();
    for kind in kinds {
        let (trace, _) = run_supervised(&s, kind, CompensationPolicy::voltage_rematch());
        let turn = loss_turn(&trace);
        results.push((kind, sag_turn(&trace), turn));
    }
    let (_, sag0, loss0) = results[0];
    for &(kind, sag, loss) in &results[1..] {
        assert_eq!(sag, sag0, "sag tick agrees for {kind:?}");
        let spread = (loss as f64 - loss0 as f64).abs() / loss0 as f64;
        assert!(
            spread < 0.2,
            "loss turn for {kind:?} within 20%: {loss} vs {loss0}"
        );
    }
}

#[test]
fn signal_level_chain_rides_through_a_cavity_trip() {
    // The signal-level fidelity sees the same plant hook through the gap
    // DDS (amplitude × scale, frequency + detune): a short trip mutes the
    // gap signal — the detector stops measuring, the chain must not panic
    // or lose lock permanently — and measurement resumes after recovery.
    let mut s = MdeScenario::nov24_2023();
    s.bunches = 1;
    s.faults = FaultProgram::cavity_trip(1.0e-3, 1.5e-3, 0.5e-3, 0xCAF3);
    let result = SignalLevelLoop::new(s).run(3e-3, true).unwrap();
    assert!(result.outcome.survived(), "trip does not kill the chain");
    assert!(result.phase_deg.len() > 1000, "measurement resumed");
}
