//! SessionMux acceptance tests.
//!
//! The headline claim, quantified over random interleavings: a session
//! hosted on the multiplexer — time-sliced, paused at arbitrary row
//! targets, evicted to checkpoint bytes and transparently restored, stolen
//! between 1/4/8 workers — produces the *bit-identical* trace, audit
//! events and deterministic telemetry of an uninterrupted
//! `run_supervised` call. Killing a session mid-eviction and resuming its
//! snapshot bytes in a brand-new mux (fresh workers, fresh registry) is
//! covered by the same yardstick.

use cil_core::harness::{LoopHarness, LoopTrace};
use cil_core::hil::EngineKind;
use cil_core::{
    LoopSupervisor, MdeScenario, MuxConfig, SessionMux, SessionSpec, SessionState,
    TelemetryRegistry,
};
use proptest::prelude::*;

/// Short but non-trivial closed-loop run: one bunch, long enough that a
/// jump fires and the supervisor sees real work.
fn scenario() -> MdeScenario {
    let mut s = MdeScenario::nov24_2023();
    s.duration_s = 0.008;
    s.bunches = 1;
    s
}

fn mux(workers: usize, slice_rows: u64) -> SessionMux {
    SessionMux::new(MuxConfig {
        workers,
        slice_rows,
        ..MuxConfig::default()
    })
    .unwrap()
}

/// The uninterrupted yardstick every mux run must reproduce exactly.
fn reference(s: &MdeScenario, registry: Option<&TelemetryRegistry>) -> LoopTrace {
    let mut harness = LoopHarness::for_scenario(s, true);
    if let Some(r) = registry {
        harness = harness.with_telemetry(r);
    }
    let mut sup = LoopSupervisor::for_scenario(s);
    harness
        .run_supervised(s, EngineKind::Map, s.duration_s, &mut sup)
        .unwrap()
}

/// Deterministic (non-wall-clock) metric values, sorted by name. Exact
/// string equality on these is the telemetry half of bit-identity.
fn deterministic_metrics(r: &TelemetryRegistry) -> Vec<(String, String)> {
    let snap = r.snapshot();
    let mut out: Vec<(String, String)> = Vec::new();
    for (name, v) in &snap.counters {
        if !name.contains("wall") {
            out.push((name.clone(), v.to_string()));
        }
    }
    for (name, v) in &snap.gauges {
        if !name.contains("wall") {
            out.push((name.clone(), format!("{v:?}")));
        }
    }
    for (name, h) in &snap.histograms {
        if !name.contains("wall") {
            out.push((
                name.clone(),
                format!("{:?}/{}/{:?}", h.buckets, h.count, h.sum),
            ));
        }
    }
    out.sort();
    out
}

/// Field-by-field exact trace equality (f64 compared bit-for-bit).
macro_rules! prop_assert_traces_equal {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        prop_assert_eq!(&a.times, &b.times, "row times");
        prop_assert_eq!(&a.bunch_phase_deg, &b.bunch_phase_deg, "bunch rows");
        prop_assert_eq!(&a.mean_phase_deg, &b.mean_phase_deg, "mean phase");
        prop_assert_eq!(&a.control_hz, &b.control_hz, "actuation");
        prop_assert_eq!(&a.jump_times, &b.jump_times, "jump edges");
        prop_assert_eq!(&a.events, &b.events, "audit events");
    }};
}

const WORKER_SWEEP: [usize; 3] = [1, 4, 8];
const SLICE_SWEEP: [u64; 3] = [64, 257, 1024];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random pause/evict/resume interleavings at random row targets, on
    /// 1/4/8 workers and three slice budgets, all land bit-identical to
    /// the uninterrupted run — trace, events, and telemetry totals.
    #[test]
    fn interleaved_pause_evict_resume_is_bit_identical(
        cuts in prop::collection::vec(0.05f64..0.95, 1..4),
        evict_mask in any::<u8>(),
        workers_ix in 0usize..3,
        slice_ix in 0usize..3,
    ) {
        let s = scenario();
        let reg_ref = TelemetryRegistry::new();
        let want = reference(&s, Some(&reg_ref));
        let total = want.times.len() as u64;

        let mut targets: Vec<u64> = cuts
            .iter()
            .map(|f| ((f * total as f64) as u64).max(1))
            .collect();
        targets.sort_unstable();
        targets.dedup();

        let m = mux(WORKER_SWEEP[workers_ix], SLICE_SWEEP[slice_ix]);
        let reg = TelemetryRegistry::new();
        let h = m
            .create(SessionSpec::new(s.clone(), EngineKind::Map).with_registry(&reg))
            .unwrap();
        for (i, &rows) in targets.iter().enumerate() {
            h.step_to(rows).unwrap();
            let st = h.wait().unwrap();
            prop_assert!(st.rows >= rows, "parked at {} before target {rows}", st.rows);
            prop_assert_eq!(st.state, SessionState::Parked);
            if evict_mask & (1 << i) != 0 {
                prop_assert!(h.evict().unwrap(), "parked session must evict");
                prop_assert_eq!(h.status().unwrap().state, SessionState::Evicted);
            }
        }
        h.run_to_end().unwrap();
        let got = h.join().unwrap();
        prop_assert_traces_equal!(got, want);
        prop_assert_eq!(deterministic_metrics(&reg), deterministic_metrics(&reg_ref));
    }

    /// Kill-and-resume mid-eviction: snapshot an evicted session's bytes,
    /// kill it, and rehydrate the bytes in a brand-new mux with a fresh
    /// registry. The resumed half must complete the run bit-identically —
    /// including the telemetry totals carried inside the snapshot.
    #[test]
    fn killed_session_resumes_from_snapshot_in_a_fresh_mux(
        cut in 0.1f64..0.9,
        workers_ix in 0usize..3,
        slice_ix in 0usize..3,
    ) {
        let s = scenario();
        let reg_ref = TelemetryRegistry::new();
        let want = reference(&s, Some(&reg_ref));
        let total = want.times.len() as u64;
        let rows = ((cut * total as f64) as u64).max(1);

        let bytes = {
            let m = mux(WORKER_SWEEP[workers_ix], SLICE_SWEEP[slice_ix]);
            let reg = TelemetryRegistry::new();
            let h = m
                .create(SessionSpec::new(s.clone(), EngineKind::Map).with_registry(&reg))
                .unwrap();
            h.step_to(rows).unwrap();
            let st = h.wait().unwrap();
            prop_assert_eq!(st.state, SessionState::Parked);
            prop_assert!(h.evict().unwrap());
            let bytes = h.snapshot().unwrap();
            h.kill().unwrap();
            prop_assert_eq!(h.status().unwrap().state, SessionState::Dead);
            prop_assert!(h.join().is_err(), "a killed session must not join");
            bytes
        };

        let m2 = mux(WORKER_SWEEP[2 - workers_ix], SLICE_SWEEP[slice_ix]);
        let reg2 = TelemetryRegistry::new();
        let h2 = m2
            .create_from_snapshot(
                SessionSpec::new(s.clone(), EngineKind::Map).with_registry(&reg2),
                bytes,
            )
            .unwrap();
        prop_assert!(h2.status().unwrap().rows >= rows.min(total));
        h2.run_to_end().unwrap();
        let got = h2.join().unwrap();
        prop_assert_traces_equal!(got, want);
        prop_assert_eq!(deterministic_metrics(&reg2), deterministic_metrics(&reg_ref));
    }
}

/// Work-stealing stress: a skewed fleet (most sessions created on one
/// shard's queue in a burst) on every worker count in the sweep, every
/// session bit-identical to the yardstick and the fleet counters
/// consistent.
#[test]
fn stolen_fleet_matches_reference_on_every_worker_count() {
    let s = scenario();
    let want = reference(&s, None);
    for workers in WORKER_SWEEP {
        let m = mux(workers, 128);
        let handles: Vec<_> = (0..12)
            .map(|_| {
                let h = m
                    .create(SessionSpec::new(s.clone(), EngineKind::Map))
                    .unwrap();
                h.run_to_end().unwrap();
                h
            })
            .collect();
        for h in &handles {
            let got = h.join().unwrap();
            assert_eq!(got.times, want.times, "{workers} workers: row times");
            assert_eq!(got.events, want.events, "{workers} workers: audit events");
            assert_eq!(
                got.bunch_phase_deg, want.bunch_phase_deg,
                "{workers} workers: bunch rows"
            );
        }
        let snap = m.telemetry().snapshot();
        assert_eq!(snap.counter("cil_mux_sessions_finished_total"), Some(12));
        assert_eq!(snap.gauge("cil_mux_sessions_live"), Some(0.0));
    }
}
