//! Integration tests across the DSP substrate: the measurement chain the
//! FPGA framework is assembled from, driven end to end.

use cavity_in_the_loop::dsp::converter::AdcModel;
use cavity_in_the_loop::dsp::dds::Dds;
use cavity_in_the_loop::dsp::gauss::GaussPulseGenerator;
use cavity_in_the_loop::dsp::period::PeriodLengthDetector;
use cavity_in_the_loop::dsp::phase_detector::PhaseDetector;
use cavity_in_the_loop::dsp::ring_buffer::CaptureRingBuffer;
use proptest::prelude::*;

/// DDS → ADC → period detector: the frequency measurement path locks to
/// the synthesised frequency within the tuning-word resolution.
#[test]
fn dds_to_period_detector_chain() {
    for &f in &[100e3, 547e3, 800e3, 1.3e6] {
        let mut dds = Dds::standard(250e6);
        dds.set_frequency(f);
        let adc = AdcModel::fmc151();
        let mut det = PeriodLengthDetector::paper_default();
        for _ in 0..2_500_000 {
            let v = adc.code_to_volts(adc.quantize(dds.tick()));
            det.push(v);
        }
        let measured = det.frequency(250e6).unwrap();
        assert!(
            (measured - dds.actual_frequency()).abs() < 20.0,
            "f = {f}: measured {measured}"
        );
    }
}

/// Ring buffer holds two periods at the lowest supported frequency — the
/// paper's sizing argument, verified end to end with a real signal.
#[test]
fn buffer_covers_two_periods_at_100khz() {
    let mut dds = Dds::standard(250e6);
    dds.set_frequency(100e3);
    let mut buf = CaptureRingBuffer::paper_sized();
    for _ in 0..20_000 {
        buf.push(dds.tick());
    }
    // A sample from two full periods ago must still be addressable.
    let two_periods = (2.0 * 250e6 / 100e3) as usize; // 5000 samples
    assert!(buf.read_back(two_periods).is_some());
    // Periodicity check through the buffer.
    let now = buf.read_back(0).unwrap();
    let ago = buf.read_back(2500).unwrap(); // exactly one period
    assert!((now - ago).abs() < 1e-3);
}

/// DDS pair + pulse generator + phase detector: shifting the beam pulses by
/// a known number of samples shifts the measured phase by exactly the
/// corresponding amount (the absolute reading carries the constant
/// pulse-centre group delay, the "dead time" offset of Fig. 5).
#[test]
fn pulse_to_phase_detector_chain() {
    let fs = 250e6;
    let f_ref = 800e3;
    let period = fs / f_ref;

    let measure = |offset_samples: u64| -> f64 {
        let mut ref_dds = Dds::standard(fs);
        ref_dds.set_frequency(f_ref);
        let mut pulse = GaussPulseGenerator::for_bunch(20e-9, fs, 1.0);
        let mut det = PhaseDetector::new(0.25, 4.0, period);
        let mut phases = Vec::new();
        for i in 0..500_000u64 {
            // Fire a pulse `offset_samples` after every reference crossing.
            if (i as f64 % period) < 1.0 {
                pulse.arm(i + offset_samples);
            }
            let beam = pulse.tick();
            if let Some(m) = det.push(ref_dds.tick(), beam) {
                phases.push(m.phase_deg);
            }
        }
        assert!(phases.len() > 1000);
        let tail = &phases[phases.len() / 2..];
        tail.iter().sum::<f64>() / tail.len() as f64
    };

    let base = measure(2);
    let shifted = measure(7);
    let expected_delta = 5.0 / period * 360.0 * 4.0; // 5 samples at h = 4
    assert!(
        (shifted - base - expected_delta).abs() < 2.0,
        "delta {} vs expected {expected_delta}",
        shifted - base
    );
}

/// The shrunk counterexample proptest once found for the chord bound
/// (`dsp_chain.proptest-regressions`), promoted to a named test so the
/// case runs in every configuration — including release CI, where the
/// regressions file is not necessarily consulted — and survives any
/// future pruning of the seed file. Near this frequency/fraction pair the
/// interpolation error sits almost exactly on the bound, so it guards the
/// `+ 1e-12` slack in the property.
#[test]
fn chord_bound_regression_seed_holds() {
    let (f_mhz, frac) = (1.9590571095379141, 0.5273272262300829);
    let fs = 250e6;
    let f = f_mhz * 1e6;
    let mut buf = CaptureRingBuffer::paper_sized();
    let n = 2048usize;
    for i in 0..n {
        buf.push((std::f64::consts::TAU * f * i as f64 / fs).sin());
    }
    let back = 100.0 + frac;
    let t_true = (n - 1) as f64 - back;
    let truth = (std::f64::consts::TAU * f * t_true / fs).sin();
    let lerp = buf.read_back_interpolated(back).unwrap();
    let bound = (std::f64::consts::TAU * f / fs).powi(2) / 8.0;
    assert!(
        (lerp - truth).abs() <= bound + 1e-12,
        "err {} vs bound {}",
        (lerp - truth).abs(),
        bound
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Quantisation error bound holds for arbitrary signals and widths.
    #[test]
    fn adc_error_bounded(v in -0.999f64..0.999, bits in 8u32..16) {
        let adc = AdcModel::ideal(bits, 1.0);
        let err = (adc.code_to_volts(adc.quantize(v)) - v).abs();
        prop_assert!(err <= adc.lsb());
    }

    /// The interpolated ring-buffer read satisfies the chord error bound of
    /// linear interpolation on a sine: |err| ≤ (ω/fs)²/8. (Pointwise it can
    /// lose to nearest-sample at low curvature — proptest found that — but
    /// the bound, which is what the kernel's accuracy argument rests on,
    /// always holds.)
    #[test]
    fn interpolated_read_meets_chord_bound(f_mhz in 0.2f64..5.0, frac in 0.05f64..0.95) {
        let fs = 250e6;
        let f = f_mhz * 1e6;
        let mut buf = CaptureRingBuffer::paper_sized();
        let n = 2048usize;
        for i in 0..n {
            buf.push((std::f64::consts::TAU * f * i as f64 / fs).sin());
        }
        let back = 100.0 + frac;
        let t_true = (n - 1) as f64 - back;
        let truth = (std::f64::consts::TAU * f * t_true / fs).sin();
        let lerp = buf.read_back_interpolated(back).unwrap();
        let bound = (std::f64::consts::TAU * f / fs).powi(2) / 8.0;
        prop_assert!(
            (lerp - truth).abs() <= bound + 1e-12,
            "err {} vs bound {}",
            (lerp - truth).abs(),
            bound
        );
    }
}
