//! Batched-stepping equivalence: the harness's `step_block` path must be
//! bit-identical to per-turn stepping for *every* block size — same trace
//! rows, same jump edges, same audit events, same checkpoint bytes. The
//! block size is pure mechanics (how many engine steps run between harness
//! touches); observable boundaries (controller actuation, due checkpoints,
//! watchdog demotions) are capped to a block's last row, so nothing the
//! loop records may move.

use cil_core::checkpoint::CheckpointConfig;
use cil_core::harness::{LoopHarness, LoopTrace, DEFAULT_BLOCK_ROWS};
use cil_core::hil::EngineKind;
use cil_core::signalgen::PhaseJumpProgram;
use cil_core::{LoopSupervisor, MdeScenario};
use std::path::PathBuf;

/// Block sizes spanning per-turn, sub-default, the default and
/// larger-than-any-actuation-window.
const BLOCK_SIZES: [usize; 4] = [1, 5, DEFAULT_BLOCK_ROWS, 1000];

fn base_scenario(duration_s: f64) -> MdeScenario {
    let mut s = MdeScenario::nov24_2023();
    s.duration_s = duration_s;
    s.bunches = 1;
    s
}

/// A persistent large jump early in the run: enough outlier rejections in a
/// row to exercise the supervisor's admission and watchdog paths.
fn storm_jumps() -> PhaseJumpProgram {
    PhaseJumpProgram {
        amplitude_deg: 60.0,
        interval_s: 10.0,
        path_latency_s: -(10.0 - 0.004),
    }
}

fn assert_traces_identical(a: &LoopTrace, b: &LoopTrace, what: &str) {
    assert_eq!(a.times, b.times, "{what}: row times");
    assert_eq!(a.bunch_phase_deg, b.bunch_phase_deg, "{what}: bunch rows");
    assert_eq!(a.mean_phase_deg, b.mean_phase_deg, "{what}: mean phase");
    assert_eq!(a.control_hz, b.control_hz, "{what}: actuation");
    assert_eq!(a.jump_times, b.jump_times, "{what}: jump edges");
    assert_eq!(a.events, b.events, "{what}: audit events");
    assert_eq!(a.outcome, b.outcome, "{what}: outcome");
}

fn ckpt_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/target/ckpt-tests")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Sorted (name, bytes) of every file in a checkpoint directory.
type DirBytes = Vec<(String, Vec<u8>)>;

fn dir_bytes(dir: &PathBuf) -> DirBytes {
    let mut out: DirBytes = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    out.sort();
    out
}

#[test]
fn unsupervised_trace_is_block_size_invariant() {
    // 0.11 s spans two jump toggles (every 0.05 s), so edge stamping is
    // exercised mid-run, not just at t = 0.
    let s = base_scenario(0.11);
    for kind in [EngineKind::Map, EngineKind::Cgra] {
        let reference = {
            let mut engine = kind.build(&s).unwrap();
            LoopHarness::for_scenario(&s, true)
                .with_block_rows(1)
                .unwrap()
                .run(engine.as_mut(), s.duration_s)
        };
        assert!(reference.outcome.survived());
        assert!(!reference.jump_times.is_empty(), "jumps toggled in-run");
        for block in BLOCK_SIZES {
            let mut engine = kind.build(&s).unwrap();
            let trace = LoopHarness::for_scenario(&s, true)
                .with_block_rows(block)
                .unwrap()
                .run(engine.as_mut(), s.duration_s);
            assert_traces_identical(&reference, &trace, &format!("{kind:?} block={block}"));
        }
    }
}

#[test]
fn observer_path_equals_batched_run() {
    // A cadence-1 observer caps every block at one measured row so it sees
    // the engine at every row; the recorded trace must still match the
    // batched `run`.
    let s = base_scenario(0.03);
    let mut engine = EngineKind::Map.build(&s).unwrap();
    let batched = LoopHarness::for_scenario(&s, true).run(engine.as_mut(), s.duration_s);
    let mut engine = EngineKind::Map.build(&s).unwrap();
    let mut rows_seen = 0usize;
    let observed =
        LoopHarness::for_scenario(&s, true).run_with(engine.as_mut(), s.duration_s, |_| {
            rows_seen += 1;
        });
    assert_eq!(rows_seen, observed.times.len(), "observer fired per row");
    assert_traces_identical(&batched, &observed, "run_with vs run");
}

#[test]
fn supervised_trace_and_events_are_block_size_invariant() {
    // A 0.9 µs deadline sits below the CGRA fidelity's 1.0 µs modelled
    // step, so every Cgra row overruns until the watchdog demotes to Map
    // (8 DeadlineOverrun events + EngineDemoted), while Map's software
    // jitter tail overruns only sporadically. Combined with the jump
    // storm, both fidelities produce event-rich traces whose rows must
    // land identically regardless of block size.
    let mut s = base_scenario(0.03);
    s.jumps = storm_jumps();
    let supervisor = |s: &MdeScenario| {
        let mut sup = LoopSupervisor::for_scenario(s);
        sup.config.deadline_s = 0.9e-6;
        sup
    };
    for kind in [EngineKind::Map, EngineKind::Cgra] {
        let reference = {
            let mut sup = supervisor(&s);
            LoopHarness::for_scenario(&s, true)
                .with_block_rows(1)
                .unwrap()
                .run_supervised(&s, kind, s.duration_s, &mut sup)
                .unwrap()
        };
        assert!(
            !reference.events.is_empty(),
            "{kind:?}: the tight deadline must produce audit events"
        );
        for block in BLOCK_SIZES {
            let mut sup = supervisor(&s);
            let trace = LoopHarness::for_scenario(&s, true)
                .with_block_rows(block)
                .unwrap()
                .run_supervised(&s, kind, s.duration_s, &mut sup)
                .unwrap();
            assert_traces_identical(&reference, &trace, &format!("{kind:?} block={block}"));
        }
    }
}

#[test]
fn checkpoint_bytes_are_block_size_invariant() {
    // Checkpoint cadence (177) is deliberately coprime to every tested
    // block size, so due rows land mid-block unless the budget caps them —
    // the caps are what this test pins down. No telemetry attached: every
    // checkpoint byte is then deterministic.
    let s = base_scenario(0.02);
    let mut reference: Option<(LoopTrace, DirBytes)> = None;
    for block in BLOCK_SIZES {
        let dir = ckpt_dir(&format!("block-{block}"));
        let mut cfg = CheckpointConfig::new(dir.clone());
        cfg.every_turns = 177;
        let trace = LoopHarness::for_scenario(&s, true)
            .with_block_rows(block)
            .unwrap()
            .with_checkpointing(cfg)
            .run_checkpointed(&s, EngineKind::Map, s.duration_s)
            .unwrap();
        let bytes = dir_bytes(&dir);
        assert!(!bytes.is_empty(), "block={block}: checkpoints were written");
        match &reference {
            None => reference = Some((trace, bytes)),
            Some((ref_trace, ref_bytes)) => {
                assert_traces_identical(ref_trace, &trace, &format!("ckpt block={block}"));
                assert_eq!(
                    ref_bytes, &bytes,
                    "block={block}: checkpoint directory bytes differ"
                );
            }
        }
    }
}
