//! End-to-end integration: the complete Fig. 5 experiment through the
//! public API, at both fidelities, scored against the paper's claims.

use cavity_in_the_loop::hil::{EngineKind, SignalLevelLoop, TurnLevelLoop};
use cavity_in_the_loop::scenario::MdeScenario;
use cavity_in_the_loop::trace::score_jump_response;

fn scenario() -> MdeScenario {
    let mut s = MdeScenario::nov24_2023();
    s.duration_s = 0.1; // one full jump cycle
    s.bunches = 1;
    s
}

#[test]
fn fig5_turn_level_cgra_full_story() {
    let s = scenario();
    let result = TurnLevelLoop::new(s.clone(), EngineKind::Cgra)
        .run(true)
        .unwrap();

    // One jump event in 0.1 s (at ~0.05 s).
    assert_eq!(result.jump_times.len(), 1);
    let t_jump = result.jump_times[0];
    assert!((t_jump - 0.05).abs() < 1e-3);

    let display = result.display_trace();
    let r = score_jump_response(&display, t_jump, t_jump + 0.045, s.jumps.amplitude_deg);

    // Paper claim 1: "the peak-to-peak phase amplitude of this oscillation
    // is twice the amplitude of the phase jump".
    assert!(
        (r.first_peak_ratio - 2.0).abs() < 0.4,
        "first-peak ratio {}",
        r.first_peak_ratio
    );
    // Paper claim 2: "The control loop is effective in damping the
    // longitudinal dipole oscillation."
    assert!(r.residual_ratio < 0.25, "residual {}", r.residual_ratio);
    // Paper claim 3: oscillation at the synchrotron frequency ~1.28 kHz.
    let w = result.phase_deg.window(t_jump + 1e-4, t_jump + 0.045);
    let (fs, _) = w.dominant_frequency(600.0, 3000.0);
    assert!((fs - 1.28e3).abs() < 100.0, "fs = {fs}");
}

#[test]
fn fig5_signal_level_oscillates_at_fs() {
    // Signal-level run over a shorter window (16 ms with early jumps):
    // verifies the full converter chain produces the same oscillation.
    let mut s = scenario();
    s.jumps.interval_s = 4e-3;
    s.instrument_offset_deg = 0.0;
    let result = SignalLevelLoop::new(s).run(0.016, false).unwrap();
    assert!(result.jump_times.len() >= 3);
    let w = result.phase_deg.window(result.jump_times[0] + 1e-4, 0.016);
    let (fs, amp) = w.dominant_frequency(600.0, 3000.0);
    assert!((fs - 1.28e3).abs() < 120.0, "fs = {fs}");
    assert!(amp > 3.0, "visible oscillation, amp = {amp} deg");
}

#[test]
fn open_vs_closed_loop_distinction() {
    let s = scenario();
    let open = TurnLevelLoop::new(s.clone(), EngineKind::Map)
        .run(false)
        .unwrap();
    let closed = TurnLevelLoop::new(s.clone(), EngineKind::Map)
        .run(true)
        .unwrap();
    let t_jump = open.jump_times[0];
    let score = |r: &cavity_in_the_loop::hil::HilResult| {
        score_jump_response(&r.display_trace(), t_jump, t_jump + 0.045, 8.0).residual_ratio
    };
    let r_open = score(&open);
    let r_closed = score(&closed);
    assert!(r_open > 0.7, "open loop rings: {r_open}");
    assert!(r_closed < 0.25, "closed loop damps: {r_closed}");
    assert!(r_closed < r_open / 3.0);
}

#[test]
fn controller_parameters_match_paper() {
    let s = MdeScenario::nov24_2023();
    assert_eq!(s.controller.f_pass, 1.4e3);
    assert_eq!(s.controller.gain, -5.0);
    assert_eq!(s.controller.recursion, 0.99);
    assert_eq!(s.jumps.amplitude_deg, 8.0);
    assert_eq!(s.jumps.interval_s, 0.05);
}

#[test]
fn traces_export_and_reimport() {
    let mut s = scenario();
    s.duration_s = 0.02;
    let result = TurnLevelLoop::new(s, EngineKind::Map).run(true).unwrap();
    let csv = result.phase_deg.to_csv();
    let back = cavity_in_the_loop::trace::TimeSeries::from_csv(&csv).unwrap();
    assert_eq!(back.len(), result.phase_deg.len());
    assert!((back.dt - result.phase_deg.dt).abs() / result.phase_deg.dt < 1e-6);
}
