//! Property tests: the DFG optimiser (fold + CSE + DCE) never changes
//! observable behaviour — actuator writes, register evolution — on
//! arbitrary generated kernels, and never grows the graph.

use cavity_in_the_loop::cgra::exec::{interpret_dfg, MapBus};
use cavity_in_the_loop::cgra::frontend::compile;
use cavity_in_the_loop::cgra::grid::GridConfig;
use cavity_in_the_loop::cgra::optimize::optimize;
use cavity_in_the_loop::cgra::sched::ListScheduler;
use proptest::prelude::*;

/// Random but valid kernel source with redundancy for the optimiser to
/// find: repeated subexpressions, constant arithmetic, dead values.
fn redundant_kernel_source(ops: &[u8], dead_every: usize) -> String {
    let mut src = String::from(
        "static float s0 = 0.5f;\nfor (;;) {\n  float v0 = read_sensor(0, 0.0f);\n  float v1 = (1.5f + 2.5f) * 0.25f;\n",
    );
    let mut next = 2usize;
    for (i, &op) in ops.iter().enumerate() {
        let a = format!("v{}", i % next);
        let b = format!("v{}", (i * 5 + 1) % next);
        let expr = match op % 6 {
            0 => format!("{a} + {b}"),
            1 => format!("{a} * {b} + {a} * {b}"), // CSE bait
            2 => format!("sqrtf(fabsf({a}) + 1.0f)"),
            3 => format!("(2.0f + 2.0f) * {a}"), // folding bait
            4 => format!("fminf({a}, {b}) - fmaxf({a}, {b})"),
            _ => format!("select({a} < {b}, {a}, s0)"),
        };
        src.push_str(&format!("  float v{next} = {expr};\n"));
        next += 1;
        if dead_every > 0 && i % dead_every == 0 {
            // Dead value: never used downstream.
            src.push_str(&format!("  float dead{i} = v{} * 3.0f;\n", next - 1));
        }
    }
    src.push_str(&format!("  s0 = v{} * 0.125f;\n", next - 1));
    src.push_str(&format!("  write_actuator(0, v{});\n", next / 2));
    src.push_str("}\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimizer_preserves_behaviour(
        ops in prop::collection::vec(any::<u8>(), 1..20),
        dead_every in 0usize..4,
        sensors in prop::collection::vec(-5.0f64..5.0, 4),
    ) {
        let src = redundant_kernel_source(&ops, dead_every);
        let kernel = compile(&src).expect("generated source compiles");
        let (opt, stats) = optimize(&kernel.dfg);
        prop_assert!(stats.nodes_after <= stats.nodes_before);

        let mut regs_a = vec![0.0f64; kernel.dfg.reg_count() as usize];
        let mut regs_b = vec![0.0f64; opt.reg_count().max(kernel.dfg.reg_count()) as usize];
        for &(r, v) in &kernel.reg_inits {
            regs_a[r as usize] = v;
            regs_b[r as usize] = v;
        }
        for &sv in &sensors {
            let mut bus_a = MapBus::default();
            let mut bus_b = MapBus::default();
            bus_a.set_sensor(0, sv);
            bus_b.set_sensor(0, sv);
            interpret_dfg(&kernel.dfg, &mut regs_a, &mut bus_a, &[]);
            interpret_dfg(&opt, &mut regs_b[..opt.reg_count() as usize], &mut bus_b, &[]);
            // Bit-exact (compare bit patterns: long random chains can
            // overflow to inf and produce NaN, where == would lie).
            let bits = |w: &[(u16, f64)]| -> Vec<(u16, u64)> {
                w.iter().map(|&(p, v)| (p, v.to_bits())).collect()
            };
            prop_assert_eq!(bits(&bus_a.writes), bits(&bus_b.writes));
        }
        // Architectural registers agree too.
        for r in 0..kernel.dfg.reg_count() as usize {
            prop_assert_eq!(regs_a[r].to_bits(), regs_b[r].to_bits());
        }
    }

    #[test]
    fn optimized_kernels_still_schedule_and_validate(
        ops in prop::collection::vec(any::<u8>(), 1..16),
    ) {
        let src = redundant_kernel_source(&ops, 2);
        let kernel = compile(&src).expect("valid");
        let (opt, _) = optimize(&kernel.dfg);
        let schedule = ListScheduler::new(GridConfig::mesh_3x3()).schedule(&opt);
        prop_assert!(schedule.validate(&opt).is_ok());
    }

    #[test]
    fn optimizer_is_idempotent(ops in prop::collection::vec(any::<u8>(), 1..16)) {
        let src = redundant_kernel_source(&ops, 3);
        let kernel = compile(&src).expect("valid");
        let (once, _) = optimize(&kernel.dfg);
        let (twice, stats2) = optimize(&once);
        prop_assert_eq!(once.len(), twice.len());
        prop_assert_eq!(stats2.folded, 0);
        prop_assert_eq!(stats2.cse_merged, 0);
        prop_assert_eq!(stats2.dead_removed, 0);
    }
}
