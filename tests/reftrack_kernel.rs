//! Differential-testing harness for the RefTrack wide-lane kernel.
//!
//! Three layers of cross-checks, each over the shared matched-ensemble
//! generators in `tests/common`:
//!
//! 1. **Sine accuracy** — the deterministic polynomial sine against the
//!    host libm, to the stated bound (≤ 2 ulp, or ≤ 1e-24 absolute in the
//!    cancellation-dominated neighbourhood of sine zeros).
//! 2. **Backend bit-identity** — scalar-libm-structured, portable
//!    autovectorised and every runtime-dispatched wide backend (AVX2,
//!    AVX-512, `std::simd` when the `simd` feature is on), quantified over
//!    {threads × chunk size × block size}: trajectories, centroid moments
//!    and harness traces must agree to the bit.
//! 3. **Trajectory envelope** — the polynomial kernel against the libm
//!    reference over whole tracked trajectories: not bit-equal (different
//!    sine), but within a tight absolute envelope.
//!
//! Plus a checkpoint kill-and-resume through the intra-step parallel path,
//! the property the harness's CILCKPT layer depends on.

mod common;

use cavity_in_the_loop::checkpoint::CheckpointConfig;
use cavity_in_the_loop::engine::RefTrackEngine;
use cavity_in_the_loop::harness::LoopHarness;
use cavity_in_the_loop::hil::EngineKind;
use cavity_in_the_loop::reftrack::kernel::{poly_sin, ulp_distance, KernelBackend, REDUCE_QUANTUM};
use cavity_in_the_loop::reftrack::{MultiParticleTracker, TrackerConfig};
use cavity_in_the_loop::scenario::MdeScenario;
use common::{matched_case, worker_matrix, MatchedCase};
use proptest::prelude::*;
use std::path::PathBuf;

/// Engine-level block sizes from the acceptance criteria.
const BLOCK_SIZES: [usize; 3] = [1, 64, 1000];

fn tracker(
    case: &MatchedCase,
    threads: usize,
    min_chunk: usize,
    backend: KernelBackend,
) -> MultiParticleTracker {
    let (op, e) = case.build();
    MultiParticleTracker::new(
        op,
        e,
        TrackerConfig {
            threads,
            min_chunk,
            backend,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Layer 1: the polynomial sine is within 2 ulp of libm — or within
    /// 1e-24 absolute where sin(x) itself is below the ~1e-26 two-term
    /// reduction residue — over the whole argument range the tracker can
    /// produce (|ω_rf·Δt + φ| ≲ 10³ rad) and well beyond.
    #[test]
    fn poly_sin_matches_libm(x in -1.0e4f64..1.0e4, scale in 0.0f64..1.0) {
        // Two scales: raw draws cover the coarse range; scaled draws
        // concentrate around the small |x| the kick actually evaluates.
        for arg in [x, x * scale * 1e-3] {
            let (a, b) = (poly_sin(arg), arg.sin());
            prop_assert!(
                ulp_distance(a, b) <= 2 || (a - b).abs() < 1e-24,
                "x = {arg}: poly {a} vs libm {b} ({} ulp)",
                ulp_distance(a, b)
            );
        }
    }

    /// Layer 2 (tracker): every polynomial backend × every worker
    /// configuration produces bit-identical phase-space arrays *and*
    /// bit-identical centroid moments.
    #[test]
    fn kernel_bit_identity_over_backends_and_threads(
        case in matched_case(1..6_000),
        phase in -0.3f64..0.3,
    ) {
        let mut reference: Option<(Vec<f64>, Vec<f64>, Vec<u64>)> = None;
        for backend in KernelBackend::poly_available() {
            for (threads, min_chunk) in worker_matrix() {
                let mut tr = tracker(&case, threads, min_chunk, backend);
                let mut moment_bits = Vec::new();
                for _ in 0..8 {
                    let m = tr.step(phase);
                    moment_bits.push(m.sum_dt.to_bits());
                    moment_bits.push(m.sum_dgamma.to_bits());
                }
                let got = (tr.ensemble.dt, tr.ensemble.dgamma, moment_bits);
                match &reference {
                    None => reference = Some(got),
                    Some(want) => {
                        prop_assert!(
                            want.0 == got.0 && want.1 == got.1,
                            "phase space differs: backend {} threads {threads} min_chunk {min_chunk}",
                            backend.label()
                        );
                        prop_assert!(
                            want.2 == got.2,
                            "centroid moments differ: backend {} threads {threads} min_chunk {min_chunk}",
                            backend.label()
                        );
                    }
                }
            }
        }
    }

    /// Layer 3: over whole trajectories the polynomial kernel stays inside
    /// a tight absolute envelope of the libm reference — the two are the
    /// same physics, differing only by ≤2 ulp per sine evaluation.
    #[test]
    fn poly_trajectory_tracks_libm_reference(case in matched_case(16..2_000)) {
        let mut libm = tracker(&case, 1, 1, KernelBackend::Libm);
        let mut poly = tracker(&case, 1, 1, KernelBackend::Auto);
        let turns = 200;
        let mut max_dt_err = 0.0f64;
        for _ in 0..turns {
            let a = libm.step(0.05);
            let b = poly.step(0.05);
            max_dt_err = max_dt_err.max((a.centroid_dt() - b.centroid_dt()).abs());
        }
        // Per-turn sine discrepancy is ≲1e-16 relative; through the kick it
        // perturbs Δt by ≲1e-20 s/turn at SIS18 scales. 1e-15 s over 200
        // turns is ~5 orders of slack yet still 10⁶× tighter than any
        // physical signal (Δt ~ 1e-8 s).
        prop_assert!(
            max_dt_err < 1e-15,
            "centroid diverged {max_dt_err} s over {turns} turns"
        );
    }
}

/// Layer 2 (engine): the full harness trace is bit-identical across block
/// sizes {1, 64, 1000} × worker configurations, on the parallel path.
#[test]
fn engine_trace_invariant_over_block_size_and_threads() {
    let mut s = MdeScenario::nov24_2023();
    s.duration_s = 0.005;
    s.bunches = 1;
    // Same construction as EngineKind::RefTrack{..}.build(): 15 ns sigma,
    // no displacement. Ragged particle count exercises the remainder slots.
    let particles = 3 * REDUCE_QUANTUM + 17;

    let mut reference = None;
    for block in BLOCK_SIZES {
        for (threads, min_chunk) in worker_matrix() {
            let mut engine =
                RefTrackEngine::from_scenario(&s, particles, 0xD1FF, 15e-9, 0.0).unwrap();
            engine.set_tracker_config(TrackerConfig {
                threads,
                min_chunk,
                backend: KernelBackend::Auto,
            });
            let trace = LoopHarness::for_scenario(&s, true)
                .with_block_rows(block)
                .unwrap()
                .run(&mut engine, s.duration_s);
            match &reference {
                None => reference = Some(trace),
                Some(want) => {
                    assert_eq!(want.times, trace.times, "block {block} t{threads}");
                    assert_eq!(
                        want.bunch_phase_deg, trace.bunch_phase_deg,
                        "block {block} threads {threads} min_chunk {min_chunk}"
                    );
                    assert_eq!(
                        want.control_hz, trace.control_hz,
                        "block {block} t{threads}"
                    );
                    assert_eq!(want.outcome, trace.outcome, "block {block} t{threads}");
                }
            }
        }
    }
}

/// Checkpoint kill-and-resume *through the intra-step parallel path*: the
/// killed run uses 8 worker threads, the resume rebuilds with the default
/// configuration — bit-identity across worker configurations is exactly
/// what makes the CILCKPT bytes replayable.
#[test]
fn checkpoint_resume_through_parallel_step() {
    let mut s = MdeScenario::nov24_2023();
    s.duration_s = 0.004;
    s.bunches = 1;
    let kind = EngineKind::RefTrack {
        particles: 2048,
        seed: 42,
    };
    let dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/target/ckpt-tests"))
        .join("reftrack-kernel-parallel");
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = CheckpointConfig::new(dir);
    cfg.every_turns = 256;

    // Reference: uninterrupted, default workers, no checkpointing.
    let mut engine = kind.build(&s).unwrap();
    let reference = LoopHarness::for_scenario(&s, true).run(engine.as_mut(), s.duration_s);

    // Killed run at 8 threads through the parallel step (same construction
    // as kind.build, then retuned).
    let mut engine = RefTrackEngine::from_scenario(&s, 2048, 42, 15e-9, 0.0).unwrap();
    engine.set_tracker_config(TrackerConfig {
        threads: 8,
        min_chunk: 64,
        backend: KernelBackend::Auto,
    });
    let mut harness = LoopHarness::for_scenario(&s, true).with_checkpointing(cfg.clone());
    let _ = harness
        .run_checkpointed_with(&mut engine, kind, s.duration_s * 0.6)
        .unwrap();

    // Fresh harness resumes (rebuilds the engine with default workers).
    let mut harness = LoopHarness::for_scenario(&s, true).with_checkpointing(cfg);
    let resumed = harness.resume_from(&s, s.duration_s).unwrap();

    assert_eq!(reference.times, resumed.times);
    assert_eq!(reference.bunch_phase_deg, resumed.bunch_phase_deg);
    assert_eq!(reference.mean_phase_deg, resumed.mean_phase_deg);
    assert_eq!(reference.control_hz, resumed.control_hz);
    assert_eq!(reference.outcome, resumed.outcome);
}
