//! Property tests pinning the pre-decoded micro-op plan to its two oracles.
//!
//! The CGRA executor's hot path replays a flat [`MicroOpPlan`] lowered at
//! compile time; the legacy per-node DFG walk and the order-independent
//! interpreter remain as differential oracles. These properties check the
//! three agree *bit-exactly* on random kernels — outputs, actuator writes
//! and loop-carried registers across iterations — and that a mid-iteration
//! `MissingInput` fault rolls register state back identically on the plan
//! and the walk, so a supervisor retry resumes on the same trajectory as a
//! run that never faulted.

use cavity_in_the_loop::cgra::exec::{interpret_dfg, CgraExecutor, ExecError, MapBus};
use cavity_in_the_loop::cgra::frontend::compile;
use cavity_in_the_loop::cgra::grid::{GridConfig, Topology};
use cavity_in_the_loop::cgra::isa::OpKind;
use cavity_in_the_loop::cgra::sched::ListScheduler;
use cavity_in_the_loop::cgra::Dfg;
use proptest::prelude::*;

/// Random — but always valid — kernel source: a chain of arithmetic over
/// locals, statics and sensors (same shape as the toolchain roundtrip
/// generator, kept separate so the two suites can diverge).
fn random_kernel_source(ops: &[u8]) -> String {
    let mut src = String::from(
        "static float s0 = 0.75f;\nstatic float s1 = -0.5f;\nfor (;;) {\n  float v0 = read_sensor(0, 0.0f);\n  float v1 = 3.0f;\n",
    );
    let mut next = 2usize;
    for (i, &op) in ops.iter().enumerate() {
        let a = format!("v{}", i % next);
        let b = format!("v{}", (i * 5 + 1) % next);
        let expr = match op % 8 {
            0 => format!("{a} + {b}"),
            1 => format!("{a} - {b}"),
            2 => format!("{a} * 0.25f + {b}"),
            3 => format!("{a} / ({b} * {b} + 2.0f)"),
            4 => format!("sqrtf({a} * {a} + 0.5f)"),
            5 => format!("fmaxf({a}, {b})"),
            6 => format!("select({b} < {a}, {a}, {b})"),
            _ => format!("fabsf({b}) + s1 * 0.0625f"),
        };
        src.push_str(&format!("  float v{next} = {expr};\n"));
        next += 1;
    }
    src.push_str(&format!("  s0 = v{} * 0.5f + s1;\n", next - 1));
    src.push_str(&format!("  s1 = s1 * 0.875f + v{} * 0.03125f;\n", next / 2));
    src.push_str(&format!("  write_actuator(0, v{});\n", next - 1));
    src.push_str("}\n");
    src
}

/// A random DFG with loop-carried registers and a *faultable* `Input`
/// node, built directly on the graph API (the C frontend never emits
/// `Input` — engines feed those ports from the harness).
fn input_bearing_dfg(ops: &[u8]) -> Dfg {
    let mut g = Dfg::new();
    let r0 = g.add(OpKind::RegRead(0), &[]);
    let r1 = g.add(OpKind::RegRead(1), &[]);
    let live_in = g.add(OpKind::Input(0), &[]);
    let mut vals = vec![r0, r1, live_in, g.konst(0.5)];
    for (i, &op) in ops.iter().enumerate() {
        let a = vals[i % vals.len()];
        let b = vals[(i * 3 + 1) % vals.len()];
        let id = match op % 6 {
            0 => g.add(OpKind::Add, &[a, b]),
            1 => g.add(OpKind::Sub, &[a, b]),
            2 => g.add(OpKind::Mul, &[a, b]),
            3 => g.add(OpKind::Abs, &[a]),
            4 => g.add(OpKind::Min, &[a, b]),
            _ => g.add(OpKind::Select, &[a, b, live_in]),
        };
        vals.push(id);
    }
    let last = *vals.last().unwrap();
    let mid = vals[vals.len() / 2];
    g.add(OpKind::RegWrite(0), &[last]);
    g.add(OpKind::RegWrite(1), &[mid]);
    g.add(OpKind::Output(0), &[last]);
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Plan replay, legacy node walk and direct interpretation agree
    /// bit-exactly on outputs, actuator writes and loop-carried registers,
    /// over several iterations of random kernels on random grids.
    #[test]
    fn plan_walk_and_interpreter_agree(
        ops in prop::collection::vec(any::<u8>(), 1..24),
        rows in 2u16..5,
        cols in 2u16..5,
        topo_idx in 0usize..3,
        sensor_vals in prop::collection::vec(-8.0f64..8.0, 4),
    ) {
        let src = random_kernel_source(&ops);
        let kernel = compile(&src).expect("generated source is valid");
        let topo = [Topology::Mesh, Topology::MeshDiagonal, Topology::Torus][topo_idx];
        let grid = GridConfig { topology: topo, ..GridConfig::mesh(rows, cols) };
        let schedule = ListScheduler::new(grid).schedule(&kernel.dfg);
        schedule.validate(&kernel.dfg).expect("schedule valid");

        let mut planned = CgraExecutor::new(kernel.dfg.clone(), schedule.clone());
        let mut walker = CgraExecutor::new(kernel.dfg.clone(), schedule);
        let mut regs = vec![0.0f64; kernel.dfg.reg_count() as usize];
        for &(r, v) in &kernel.reg_inits {
            planned.set_reg(r, v);
            walker.set_reg(r, v);
            regs[r as usize] = v;
        }
        let mut out_planned: Vec<(u16, f64)> = Vec::new();
        for &sv in &sensor_vals {
            let mut bus_p = MapBus::default();
            let mut bus_w = MapBus::default();
            let mut bus_i = MapBus::default();
            bus_p.set_sensor(0, sv);
            bus_w.set_sensor(0, sv);
            bus_i.set_sensor(0, sv);
            planned
                .try_run_iteration_into(&mut bus_p, &[], &mut out_planned)
                .expect("plan replay succeeds");
            let out_walk = walker
                .try_run_iteration_nodewalk(&mut bus_w, &[])
                .expect("node walk succeeds");
            let out_interp = interpret_dfg(&kernel.dfg, &mut regs, &mut bus_i, &[]);
            // Exact equality: same operations in dependency order, no
            // reassociation anywhere.
            prop_assert_eq!(&out_planned, &out_walk);
            prop_assert_eq!(&out_planned, &out_interp);
            prop_assert_eq!(&bus_p.writes, &bus_w.writes);
            prop_assert_eq!(&bus_p.writes, &bus_i.writes);
            for r in 0..kernel.dfg.reg_count() {
                prop_assert_eq!(planned.reg(r), walker.reg(r));
                prop_assert_eq!(planned.reg(r), regs[r as usize]);
            }
        }
    }

    /// A `MissingInput` fault mid-iteration rolls loop-carried registers
    /// back identically on the plan and the walk: the faulted iteration is
    /// invisible, and the retried run stays bit-identical to an oracle
    /// that never faulted.
    #[test]
    fn missing_input_rollback_is_bit_identical(
        ops in prop::collection::vec(any::<u8>(), 1..16),
        good_iters in 1usize..4,
        live_in in -4.0f64..4.0,
    ) {
        let g = input_bearing_dfg(&ops);
        let schedule = ListScheduler::new(GridConfig::mesh(4, 4)).schedule(&g);
        schedule.validate(&g).expect("schedule valid");

        let mut planned = CgraExecutor::new(g.clone(), schedule.clone());
        let mut walker = CgraExecutor::new(g.clone(), schedule);
        let mut regs = vec![0.0f64; g.reg_count() as usize];
        let mut out_planned: Vec<(u16, f64)> = Vec::new();

        // Healthy prefix: all three advance in lockstep.
        for _ in 0..good_iters {
            planned
                .try_run_iteration_into(&mut MapBus::default(), &[live_in], &mut out_planned)
                .expect("inputs present");
            walker
                .try_run_iteration_nodewalk(&mut MapBus::default(), &[live_in])
                .expect("inputs present");
            interpret_dfg(&g, &mut regs, &mut MapBus::default(), &[live_in]);
        }

        // Fault: input withheld. Both fallible paths report the port and
        // leave registers exactly as the last good iteration committed
        // them; the plan path also leaves the scratch buffer empty.
        let before: Vec<f64> = (0..g.reg_count()).map(|r| planned.reg(r)).collect();
        let err_p = planned.try_run_iteration_into(&mut MapBus::default(), &[], &mut out_planned);
        let err_w = walker.try_run_iteration_nodewalk(&mut MapBus::default(), &[]);
        prop_assert_eq!(err_p, Err(ExecError::MissingInput(0)));
        prop_assert_eq!(err_w.unwrap_err(), ExecError::MissingInput(0));
        prop_assert!(out_planned.is_empty(), "failed iteration emits no outputs");
        for r in 0..g.reg_count() {
            prop_assert_eq!(planned.reg(r), before[r as usize]);
            prop_assert_eq!(walker.reg(r), before[r as usize]);
        }

        // Retry with the input restored: bit-identical to the never-faulted
        // interpreter on outputs and committed registers.
        planned
            .try_run_iteration_into(&mut MapBus::default(), &[live_in], &mut out_planned)
            .expect("retry succeeds");
        let out_walk = walker
            .try_run_iteration_nodewalk(&mut MapBus::default(), &[live_in])
            .expect("retry succeeds");
        let out_interp = interpret_dfg(&g, &mut regs, &mut MapBus::default(), &[live_in]);
        prop_assert_eq!(&out_planned, &out_walk);
        prop_assert_eq!(&out_planned, &out_interp);
        for r in 0..g.reg_count() {
            prop_assert_eq!(planned.reg(r), regs[r as usize]);
            prop_assert_eq!(walker.reg(r), regs[r as usize]);
        }
    }
}
