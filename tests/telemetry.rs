//! Telemetry acceptance tests: the golden-trace suite.
//!
//! The layer is only trustworthy if its numbers are pinned down: (1) every
//! counter a supervised storm run exports equals what an auditor counts in
//! the trace's event log, exactly and deterministically; (2) kernel-cache
//! stats are exact on a private cache; (3) merging N per-worker registries
//! is order-independent and lossless; (4) intervention/demotion metrics
//! show up nonzero in both Prometheus and JSON exports; (5) enabling
//! telemetry costs < 10% wall-clock on a 10k-revolution Map run (release
//! builds; emits `results/BENCH_telemetry.json`); (6) the warmup-step
//! calibration is recorded and exported without perturbing the run.
//!
//! Convention under test: metric names containing `wall` are wall-clock
//! derived and excluded from determinism comparisons; everything else must
//! be bit-identical across reruns.

use cil_core::fault::{FaultEvent, FaultKind, FaultProgram, LoopEvent};
use cil_core::hil::{EngineKind, TurnLevelLoop};
use cil_core::signalgen::PhaseJumpProgram;
use cil_core::sweep::parallel_sweep_telemetry;
use cil_core::telemetry::{sample_kernel_cache, TelemetrySnapshot};
use cil_core::{LoopSupervisor, MdeScenario, TelemetryRegistry};
use proptest::prelude::*;

/// A persistent (non-toggling within the run) jump at `t0` (same trick as
/// tests/fault_injection.rs).
fn persistent_jump(amplitude_deg: f64, t0: f64) -> PhaseJumpProgram {
    PhaseJumpProgram {
        amplitude_deg,
        interval_s: 10.0,
        path_latency_s: -(10.0 - t0),
    }
}

/// The fixed seeded scenario the golden counters are pinned to: a 15° jump
/// under a detector-outlier storm.
fn storm_scenario() -> MdeScenario {
    let mut s = MdeScenario::nov24_2023();
    s.duration_s = 0.2;
    s.bunches = 1;
    s.jumps = persistent_jump(15.0, 0.06);
    s.faults = FaultProgram::detector_outlier_storm(0.05, 0.2, 0.08, 120.0, 0xBAD5EED);
    s
}

/// Scenario whose modelled CGRA step cost is stretched past the deadline,
/// forcing a watchdog demotion.
fn overrun_scenario() -> MdeScenario {
    let mut s = MdeScenario::nov24_2023();
    s.duration_s = 0.05;
    s.bunches = 1;
    s.faults = FaultProgram {
        seed: 0,
        events: vec![FaultEvent {
            start_s: 0.01,
            end_s: s.duration_s,
            kind: FaultKind::DeadlineOverrun { factor: 3.0 },
        }],
    };
    s
}

/// Drop wall-clock-derived metrics (names containing `wall`) — the only
/// part of a snapshot allowed to differ between reruns of the same seed.
fn deterministic_part(snap: &TelemetrySnapshot) -> TelemetrySnapshot {
    TelemetrySnapshot {
        counters: snap
            .counters
            .iter()
            .filter(|(n, _)| !n.contains("wall"))
            .cloned()
            .collect(),
        gauges: snap
            .gauges
            .iter()
            .filter(|(n, _)| !n.contains("wall"))
            .cloned()
            .collect(),
        histograms: snap
            .histograms
            .iter()
            .filter(|(n, _)| !n.contains("wall"))
            .cloned()
            .collect(),
    }
}

fn count_events(events: &[LoopEvent], pred: impl Fn(&LoopEvent) -> bool) -> u64 {
    events.iter().filter(|e| pred(e)).count() as u64
}

#[test]
fn golden_counters_equal_trace_audit_exactly() {
    let s = storm_scenario();
    let run = || {
        let registry = TelemetryRegistry::new();
        let mut sup = LoopSupervisor::for_scenario(&s);
        let result = TurnLevelLoop::new(s.clone(), EngineKind::Map)
            .with_telemetry(&registry)
            .run_supervised(true, &mut sup)
            .unwrap();
        (registry.snapshot(), result)
    };
    let (snap, result) = run();

    // Counters equal an independent count over the audit channel.
    let rows = s.revolutions() as u64;
    assert_eq!(snap.counter("cil_loop_revolutions_total"), Some(rows));
    assert_eq!(
        snap.counter("cil_loop_jump_edges_total"),
        Some(result.jump_times.len() as u64)
    );
    type AuditPred<'a> = &'a dyn Fn(&LoopEvent) -> bool;
    let audits: [(&str, AuditPred); 5] = [
        ("cil_fault_rows_corrupted_total", &|e| {
            matches!(e, LoopEvent::RowCorrupted { .. })
        }),
        ("cil_supervisor_outliers_rejected_total", &|e| {
            matches!(e, LoopEvent::OutlierRejected { .. })
        }),
        ("cil_supervisor_deadline_overruns_total", &|e| {
            matches!(e, LoopEvent::DeadlineOverrun { .. })
        }),
        ("cil_supervisor_demotions_total", &|e| {
            matches!(e, LoopEvent::EngineDemoted { .. })
        }),
        ("cil_loop_beam_losses_total", &|e| {
            matches!(e, LoopEvent::BeamLost { .. })
        }),
    ];
    for (name, pred) in audits {
        assert_eq!(
            snap.counter(name),
            Some(count_events(&result.events, pred)),
            "{name} equals the audit count"
        );
    }
    // The storm must actually exercise the gate — a golden zero proves
    // nothing.
    assert!(
        snap.counter("cil_supervisor_outliers_rejected_total")
            .unwrap()
            > 0
    );
    assert!(snap.counter("cil_fault_rows_corrupted_total").unwrap() > 0);
    assert_eq!(snap.counter("cil_loop_beam_losses_total"), Some(0));

    // Supervised histograms observe once per measured row.
    for name in [
        "cil_supervisor_step_modeled_seconds",
        "cil_supervisor_deadline_headroom_seconds",
    ] {
        let h = snap.histogram(name).unwrap();
        assert_eq!(h.count, rows, "{name} observes every row");
    }
    // Structural invariant on every exported histogram.
    for (name, h) in &snap.histograms {
        assert_eq!(h.bucket_total(), h.count, "{name} buckets sum to count");
    }

    // Same seed, same numbers: rerun and compare everything but wall-clock.
    let (snap2, _) = run();
    assert_eq!(deterministic_part(&snap), deterministic_part(&snap2));
}

#[test]
fn kernel_cache_golden_counts_on_private_cache() {
    // A private cache, not the process-global one (other tests pollute it).
    let cache = cil_cgra::cache::CompiledKernelCache::new();
    let s = storm_scenario();
    let params = s.kernel_params().unwrap();
    let _a = cache.get_or_compile(&params, 1, s.pipelined, true, s.grid);
    let _b = cache.get_or_compile(&params, 1, s.pipelined, true, s.grid);
    assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
    assert!(cache.compile_seconds() > 0.0, "cold compile took time");

    let registry = TelemetryRegistry::new();
    sample_kernel_cache(&registry, &cache);
    let snap = registry.snapshot();
    assert_eq!(snap.gauge("cil_cgra_cache_hits"), Some(1.0));
    assert_eq!(snap.gauge("cil_cgra_cache_misses"), Some(1.0));
    assert_eq!(snap.gauge("cil_cgra_cache_entries"), Some(1.0));
    assert!(snap.gauge("cil_cgra_cache_compile_wall_seconds").unwrap() > 0.0);
}

#[test]
fn storm_and_demotion_metrics_appear_in_both_exports() {
    // Storm: supervisor interventions; forced overrun: an engine demotion.
    // One registry accumulates both supervised runs.
    let registry = TelemetryRegistry::new();
    let storm = storm_scenario();
    let mut sup = LoopSupervisor::for_scenario(&storm);
    let r1 = TurnLevelLoop::new(storm.clone(), EngineKind::Map)
        .with_telemetry(&registry)
        .run_supervised(true, &mut sup)
        .unwrap();
    assert!(r1.outcome.survived());

    let overrun = overrun_scenario();
    let mut sup = LoopSupervisor::for_scenario(&overrun);
    let r2 = TurnLevelLoop::new(overrun, EngineKind::Cgra)
        .with_telemetry(&registry)
        .run_supervised(true, &mut sup)
        .unwrap();
    assert!(r2.outcome.survived());

    let snap = registry.snapshot();
    let rejected = snap
        .counter("cil_supervisor_outliers_rejected_total")
        .unwrap();
    let demoted = snap.counter("cil_supervisor_demotions_total").unwrap();
    assert!(rejected > 0, "storm run rejected outliers");
    assert!(demoted > 0, "overrun run demoted the engine");

    let prom = snap.to_prometheus();
    assert!(prom.contains(&format!(
        "cil_supervisor_outliers_rejected_total {rejected}"
    )));
    assert!(prom.contains(&format!("cil_supervisor_demotions_total {demoted}")));
    assert!(prom.contains("# TYPE cil_supervisor_step_modeled_seconds histogram"));
    assert!(prom.contains("cil_supervisor_calibrated_step_wall_seconds{fidelity=\"cgra\"}"));

    let json = snap.to_json();
    assert!(json.contains(&format!(
        "\"cil_supervisor_outliers_rejected_total\":{rejected}"
    )));
    assert!(json.contains(&format!("\"cil_supervisor_demotions_total\":{demoted}")));
    assert!(json.contains("cil_supervisor_calibrated_step_wall_seconds{fidelity=\\\"cgra\\\"}"));
}

#[test]
fn sweep_merge_is_exact_and_thread_count_invariant() {
    let gains: Vec<f64> = (0..12).map(|i| -2.0 - 0.5 * f64::from(i)).collect();
    let run_sweep = |threads: usize| {
        let root = TelemetryRegistry::new();
        let residuals = parallel_sweep_telemetry(&gains, threads, &root, |reg, &gain| {
            let mut s = MdeScenario::nov24_2023();
            s.duration_s = 0.02;
            s.bunches = 1;
            s.controller.gain = gain;
            let r = TurnLevelLoop::new(s, EngineKind::Map)
                .with_telemetry(reg)
                .run(true)
                .unwrap();
            r.phase_deg.values.last().copied().unwrap()
        });
        (root.snapshot(), residuals)
    };
    let (par, res_par) = run_sweep(4);
    let (seq, res_seq) = run_sweep(1);
    assert_eq!(res_par, res_seq, "sweep results thread-count invariant");
    assert_eq!(
        deterministic_part(&par),
        deterministic_part(&seq),
        "merged telemetry thread-count invariant"
    );
    // Lossless: every run of every item counted exactly once.
    let s = MdeScenario::nov24_2023();
    let expected_rows = (0.02 * s.f_rev).round() as u64 * gains.len() as u64;
    assert_eq!(
        par.counter("cil_loop_revolutions_total"),
        Some(expected_rows)
    );
}

#[test]
fn calibration_is_recorded_and_exported_without_perturbing_the_run() {
    let mut s = MdeScenario::nov24_2023();
    s.duration_s = 0.02;
    s.bunches = 1;

    let registry = TelemetryRegistry::new();
    let mut sup = LoopSupervisor::for_scenario(&s);
    assert!(sup.calibration().is_none());
    let r = TurnLevelLoop::new(s.clone(), EngineKind::Map)
        .with_telemetry(&registry)
        .run_supervised(true, &mut sup)
        .unwrap();
    assert!(r.outcome.survived());

    let cal = sup.calibration().expect("warmup calibration recorded");
    assert_eq!(cal.kind, EngineKind::Map);
    assert!(cal.step_seconds > 0.0 && cal.step_seconds < 1.0);
    let snap = registry.snapshot();
    let gauge = snap
        .gauge("cil_supervisor_calibrated_step_wall_seconds{fidelity=\"map\"}")
        .expect("calibration exported");
    assert_eq!(gauge, cal.step_seconds);

    // Opting in to the measured figure keeps a healthy Map loop healthy:
    // the measured step sits far under the 1.25 µs deadline, so the only
    // overruns are the jitter model's rare scheduling-tail spikes — never
    // enough consecutive ones to trip the watchdog.
    let mut sup = LoopSupervisor::for_scenario(&s);
    sup.config.use_measured_step = true;
    let r = TurnLevelLoop::new(s, EngineKind::Map)
        .run_supervised(true, &mut sup)
        .unwrap();
    assert!(r.outcome.survived());
    assert!(
        !r.events
            .iter()
            .any(|e| matches!(e, LoopEvent::EngineDemoted { .. })),
        "measured Map step cost does not demote a healthy loop"
    );
}

/// Throughput guard: telemetry on a 10k-revolution Map run must cost less
/// than 10% wall-clock. Meaningless in debug builds (opt-level 0 swamps the
/// comparison), so it only runs in release (`--include-ignored` in tier1).
#[test]
#[cfg_attr(debug_assertions, ignore)]
fn telemetry_overhead_within_ten_percent_of_disabled() {
    let mut s = MdeScenario::nov24_2023();
    s.duration_s = 10_000.0 / s.f_rev; // ~10k revolutions
    s.bunches = 1;
    // The harness's loop condition can land one row either side of
    // `revolutions()` at an exact boundary; calibrate from a real run.
    let rows = TurnLevelLoop::new(s.clone(), EngineKind::Map)
        .run(true)
        .unwrap()
        .phase_deg
        .len() as u64;
    assert!(
        (10_000..10_002).contains(&rows),
        "~10k revolutions, got {rows}"
    );

    let time_run = |telemetry: bool| {
        let mut best = f64::INFINITY;
        for _ in 0..7 {
            let loop_ = TurnLevelLoop::new(s.clone(), EngineKind::Map);
            let (loop_, registry) = if telemetry {
                let reg = TelemetryRegistry::new();
                (loop_.with_telemetry(&reg), Some(reg))
            } else {
                (loop_, None)
            };
            let t0 = std::time::Instant::now();
            let r = loop_.run(true).unwrap();
            let dt = t0.elapsed().as_secs_f64();
            assert_eq!(r.phase_deg.len() as u64, rows);
            if let Some(reg) = registry {
                assert_eq!(
                    reg.snapshot().counter("cil_loop_revolutions_total"),
                    Some(rows)
                );
            }
            best = best.min(dt);
        }
        best
    };
    // Warmup (page in code, settle the allocator), then measure.
    let _ = time_run(false);
    let disabled = time_run(false);
    let enabled = time_run(true);
    let ratio = enabled / disabled;

    std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/results")).unwrap();
    std::fs::write(
        concat!(env!("CARGO_MANIFEST_DIR"), "/results/BENCH_telemetry.json"),
        format!(
            "{{\"bench\":\"telemetry_overhead\",\"revolutions\":{rows},\"runs\":7,\
             \"disabled_wall_s\":{disabled},\"enabled_wall_s\":{enabled},\
             \"ratio\":{ratio},\"bound\":1.10}}\n"
        ),
    )
    .unwrap();

    assert!(
        ratio < 1.10,
        "telemetry overhead {ratio:.3}x (enabled {enabled:.6}s vs disabled {disabled:.6}s)"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Merging N per-worker registries into a root is order-independent
    /// (counters, gauges and buckets exactly; float sums to rounding) and
    /// lossless (root totals equal the sum over workers).
    #[test]
    fn registry_merge_is_order_independent_and_lossless(
        workers in 2u64..6,
        seed in 0u64..u64::MAX / 2,
    ) {
        // Deterministic pseudo-random per-worker registries from `seed`
        // (plain LCG — no nested proptest strategies needed).
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let names = ["a_total", "b_total", "c_total"];
        let mut regs = Vec::new();
        let mut expect_counts = [0u64; 3];
        let mut expect_obs = 0u64;
        for _ in 0..workers {
            let reg = TelemetryRegistry::new();
            for (i, name) in names.iter().enumerate() {
                let n = next() % 100;
                reg.counter(name).add(n);
                expect_counts[i] += n;
            }
            reg.gauge("g").set(next() as f64 / 1e6);
            let h = reg.histogram("h_seconds");
            for _ in 0..(next() % 20) {
                h.observe(next() as f64 * 1e-9);
                expect_obs += 1;
            }
            regs.push(reg);
        }

        let forward = TelemetryRegistry::new();
        for r in &regs {
            forward.absorb(r);
        }
        let backward = TelemetryRegistry::new();
        for r in regs.iter().rev() {
            backward.absorb(r);
        }

        let fs = forward.snapshot();
        let bs = backward.snapshot();
        // Counters and gauges: exactly order-independent.
        prop_assert_eq!(&fs.counters, &bs.counters);
        prop_assert_eq!(&fs.gauges, &bs.gauges);
        // Lossless counter totals.
        for (i, name) in names.iter().enumerate() {
            prop_assert_eq!(fs.counter(name), Some(expect_counts[i]));
        }
        // Histogram buckets and counts: exact; sums: to rounding.
        let fh = fs.histogram("h_seconds").unwrap();
        let bh = bs.histogram("h_seconds").unwrap();
        prop_assert_eq!(&fh.buckets, &bh.buckets);
        prop_assert_eq!(fh.count, bh.count);
        prop_assert_eq!(fh.count, expect_obs);
        prop_assert_eq!(fh.bucket_total(), expect_obs);
        let scale = fh.sum.abs().max(bh.sum.abs()).max(1e-300);
        prop_assert!((fh.sum - bh.sum).abs() / scale < 1e-9);
    }
}
