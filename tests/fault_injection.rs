//! Fault-injection and loop-supervision acceptance tests.
//!
//! The headline claims: (1) a zero-amplitude fault program is bit-identical
//! to a fault-free run, (2) fault traces replay deterministically from the
//! seed, (3) under a detector-outlier storm the *supervised* loop damps a
//! persistent 15° jump to below 1° residual while the unsupervised loop
//! demonstrably fails, and (4) forced deadline overruns demote the engine
//! fidelity mid-run instead of killing the experiment.

use cil_core::engine::MapEngine;
use cil_core::fault::{FaultEvent, FaultKind, FaultProgram, LoopEvent, LossCause};
use cil_core::framework::SimulatorFramework;
use cil_core::harness::{LoopHarness, LoopTrace};
use cil_core::hil::{EngineKind, SignalLevelLoop, TurnLevelLoop};
use cil_core::signalgen::PhaseJumpProgram;
use cil_core::telemetry::TelemetrySnapshot;
use cil_core::{CilError, LoopSupervisor, MdeScenario, TelemetryRegistry};
use proptest::prelude::*;

/// Everything in a snapshot except wall-clock-derived metrics (names
/// containing `wall`), which are the only values allowed to differ between
/// two otherwise identical runs.
fn deterministic_part(snap: &TelemetrySnapshot) -> TelemetrySnapshot {
    TelemetrySnapshot {
        counters: snap
            .counters
            .iter()
            .filter(|(n, _)| !n.contains("wall"))
            .cloned()
            .collect(),
        gauges: snap
            .gauges
            .iter()
            .filter(|(n, _)| !n.contains("wall"))
            .cloned()
            .collect(),
        histograms: snap
            .histograms
            .iter()
            .filter(|(n, _)| !n.contains("wall"))
            .cloned()
            .collect(),
    }
}

/// A persistent (non-toggling within the run) 15° jump at `t0`: the
/// displaced-latency trick parks the first toggle of a long-interval
/// program exactly at `t0`.
fn persistent_jump(amplitude_deg: f64, t0: f64) -> PhaseJumpProgram {
    PhaseJumpProgram {
        amplitude_deg,
        interval_s: 10.0,
        path_latency_s: -(10.0 - t0),
    }
}

fn storm_scenario() -> MdeScenario {
    let mut s = MdeScenario::nov24_2023();
    s.duration_s = 0.2;
    s.bunches = 1;
    s.jumps = persistent_jump(15.0, 0.06);
    // Storm begins after the loop has settled; ~8% of the rows in
    // [0.05, 0.2) take a ±120° detector spike (= 6% of all rows, above the
    // 5% bar), covering the jump and the whole measurement tail.
    s.faults = FaultProgram::detector_outlier_storm(0.05, 0.2, 0.08, 120.0, 0xBAD5EED);
    s
}

/// Half the peak-to-peak of the trace tail — constant offsets (instrument,
/// controller start-up) cancel, residual oscillation and spikes do not.
fn tail_residual_deg(trace: &LoopTrace, t_from: f64) -> f64 {
    let tail: Vec<f64> = trace
        .times
        .iter()
        .zip(&trace.mean_phase_deg)
        .filter(|(&t, _)| t >= t_from)
        .map(|(_, &v)| v)
        .collect();
    assert!(tail.len() > 1000, "tail window populated");
    let lo = tail.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = tail.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (hi - lo) / 2.0
}

#[test]
fn supervised_loop_rides_out_detector_outlier_storm() {
    let s = storm_scenario();

    // Unsupervised: the raw spikes reach the controller and the trace.
    let mut engine = MapEngine::from_scenario(&s).unwrap();
    let mut harness = LoopHarness::for_scenario(&s, true);
    let unsupervised = harness.run(&mut engine, s.duration_s);
    assert!(unsupervised.survived());
    let corrupted = unsupervised
        .events
        .iter()
        .filter(|e| matches!(e, LoopEvent::RowCorrupted { .. }))
        .count();
    let frac = corrupted as f64 / unsupervised.times.len() as f64;
    assert!(frac >= 0.05, "storm corrupts >= 5% of rows, got {frac:.3}");
    let res_unsup = tail_residual_deg(&unsupervised, 0.15);
    assert!(
        res_unsup > 2.0,
        "unsupervised loop fails under the storm, residual {res_unsup:.2} deg"
    );

    // Supervised: outlier gate + hold-last-good keep the controller on the
    // real beam; the persistent 15 deg jump damps below 1 deg residual.
    let mut harness = LoopHarness::for_scenario(&s, true);
    let mut sup = LoopSupervisor::for_scenario(&s);
    let supervised = harness
        .run_supervised(&s, EngineKind::Map, s.duration_s, &mut sup)
        .unwrap();
    assert!(supervised.survived());
    assert!(
        supervised
            .events
            .iter()
            .any(|e| matches!(e, LoopEvent::OutlierRejected { .. })),
        "the gate rejected spikes"
    );
    let res_sup = tail_residual_deg(&supervised, 0.15);
    assert!(
        res_sup < 1.0,
        "supervised loop damps the jump under the storm, residual {res_sup:.2} deg"
    );
}

#[test]
fn forced_deadline_overruns_demote_cgra_to_map_and_finish() {
    let mut s = MdeScenario::nov24_2023();
    s.duration_s = 0.05;
    s.bunches = 1;
    // From 10 ms on, the modelled CGRA step cost is stretched 3x past the
    // revolution budget; the watchdog must demote to the analytic map and
    // keep the loop closed to the scheduled end.
    s.faults = FaultProgram {
        seed: 0,
        events: vec![FaultEvent {
            start_s: 0.01,
            end_s: s.duration_s,
            kind: FaultKind::DeadlineOverrun { factor: 3.0 },
        }],
    };
    let mut harness = LoopHarness::for_scenario(&s, true);
    let mut sup = LoopSupervisor::for_scenario(&s);
    let trace = harness
        .run_supervised(&s, EngineKind::Cgra, s.duration_s, &mut sup)
        .unwrap();
    assert!(trace.survived(), "demotion keeps the loop running");
    assert_eq!(trace.times.len(), s.revolutions(), "ran to scheduled end");

    let demotion = trace
        .events
        .iter()
        .find_map(|e| match *e {
            LoopEvent::EngineDemoted { turn, from, to, .. } => Some((turn, from, to)),
            _ => None,
        })
        .expect("a demotion event was logged");
    let (turn, from, to) = demotion;
    assert_eq!(from, EngineKind::Cgra);
    assert_eq!(to, EngineKind::Map);
    // The watchdog needs max_consecutive_bad overruns after the fault
    // activates at 10 ms.
    let turn_fault_start = (0.01 * s.f_rev) as usize;
    assert!(
        turn >= turn_fault_start
            && turn <= turn_fault_start + 2 * sup.config.max_consecutive_bad as usize,
        "demotion at turn {turn}, fault from turn {turn_fault_start}"
    );
    assert!(
        trace
            .events
            .iter()
            .any(|e| matches!(e, LoopEvent::DeadlineOverrun { .. })),
        "overruns were logged before the demotion"
    );
}

#[test]
fn coincident_beam_loss_and_watchdog_exhaustion_yield_one_injected_cause() {
    // Two fatal conditions armed for the same revolution: a bad-step
    // streak (deadline overruns stretched 10000x, plus an always-on NaN
    // burst so the streak is airtight against the jitter model's negative
    // draws) timed so that — with demotion disabled — the watchdog's 8th
    // and final consecutive bad step is the very turn a scheduled beam
    // loss activates. The audit contract: the harness checks the forced
    // loss at the revolution boundary *before* it processes that turn's
    // measured row (which would have exhausted the watchdog), so the run
    // ends with exactly one BeamLost event, cause Injected — never
    // Watchdog, never two events — regardless of engine block size.
    let mut s = MdeScenario::nov24_2023();
    s.duration_s = 0.05;
    s.bunches = 1;
    let t_rev = 1.0 / s.f_rev;
    let loss_turn = 16000usize;
    let streak = LoopSupervisor::for_scenario(&s).config.max_consecutive_bad;
    // Half-turn offsets keep the window edges robust against the engine's
    // accumulated-time rounding. Row-level faults are sampled at the row's
    // post-step time ((turn+1)·t_rev) while the forced loss is checked at
    // the pre-step boundary (turn·t_rev), hence the extra +1 turn on the
    // bad-step window so its 8th row is exactly the loss turn.
    let loss_start = (loss_turn as f64 - 0.5) * t_rev;
    let overrun_start = (loss_turn as f64 + 1.5 - streak as f64) * t_rev;
    s.faults = FaultProgram {
        seed: 0,
        events: vec![
            FaultEvent {
                start_s: loss_start,
                end_s: s.duration_s,
                kind: FaultKind::BeamLoss,
            },
            FaultEvent {
                start_s: overrun_start,
                end_s: s.duration_s,
                kind: FaultKind::DeadlineOverrun { factor: 1e4 },
            },
            FaultEvent {
                start_s: overrun_start,
                end_s: s.duration_s,
                kind: FaultKind::NanBurst { probability: 1.0 },
            },
        ],
    };

    let run = |block: usize| {
        let mut harness = LoopHarness::for_scenario(&s, true)
            .with_block_rows(block)
            .unwrap();
        let mut sup = LoopSupervisor::for_scenario(&s);
        sup.config.allow_demotion = false;
        harness
            .run_supervised(&s, EngineKind::Map, s.duration_s, &mut sup)
            .unwrap()
    };

    let reference = run(64);
    let losses: Vec<_> = reference
        .events
        .iter()
        .filter(|e| matches!(e, LoopEvent::BeamLost { .. }))
        .collect();
    assert_eq!(losses.len(), 1, "exactly one terminal audit event");
    let (turn, cause) = match reference.outcome {
        cil_core::LoopOutcome::Lost { turn, cause, .. } => (turn, cause),
        ref other => panic!("expected a loss, got {other:?}"),
    };
    assert_eq!(
        cause,
        LossCause::Injected,
        "injected loss outranks watchdog"
    );
    assert_eq!(turn, loss_turn, "lost at the revolution boundary");
    // The streak leading up to the loss was fully audited (every one of
    // the streak-1 preceding turns was a rejected NaN row), but the loss
    // turn's own row never reached the bad-step accounting.
    let rejected_turns: Vec<usize> = reference
        .events
        .iter()
        .filter_map(|e| match *e {
            LoopEvent::OutlierRejected { turn, .. } => Some(turn),
            _ => None,
        })
        .collect();
    let expected: Vec<usize> = (loss_turn - streak as usize + 1..loss_turn).collect();
    assert_eq!(rejected_turns, expected, "one short of watchdog exhaustion");
    let overrun_turns: Vec<usize> = reference
        .events
        .iter()
        .filter_map(|e| match *e {
            LoopEvent::DeadlineOverrun { turn, .. } => Some(turn),
            _ => None,
        })
        .collect();
    assert!(
        overrun_turns.iter().any(|t| expected.contains(t)),
        "stretched overruns were audited inside the window: {overrun_turns:?}"
    );
    assert!(
        !overrun_turns.contains(&loss_turn),
        "the loss boundary check preempts the overrun accounting"
    );

    // The ordering is part of the determinism contract, not an artifact
    // of one block size. (Compared via Debug: the rejected rows carry
    // measured_deg = NaN, which `==` would spuriously fail on.)
    for block in [1usize, 1000] {
        let other = run(block);
        assert_eq!(
            format!("{:?}", other.events),
            format!("{:?}", reference.events)
        );
        assert_eq!(other.outcome, reference.outcome);
    }
}

#[test]
fn supervised_fault_trace_replays_deterministically() {
    let s = storm_scenario();
    let run = || {
        let mut harness = LoopHarness::for_scenario(&s, true);
        let mut sup = LoopSupervisor::for_scenario(&s);
        harness
            .run_supervised(&s, EngineKind::Map, s.duration_s, &mut sup)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.events, b.events, "same seed, same event log");
    assert_eq!(a.mean_phase_deg, b.mean_phase_deg);
    assert_eq!(a.control_hz, b.control_hz);
    assert!(!a.events.is_empty());
}

#[test]
fn injected_beam_loss_is_reported_with_turn_and_cause() {
    let mut s = MdeScenario::nov24_2023();
    s.duration_s = 0.03;
    s.bunches = 1;
    s.faults = FaultProgram {
        seed: 0,
        events: vec![FaultEvent {
            start_s: 0.02,
            end_s: 0.03,
            kind: FaultKind::BeamLoss,
        }],
    };
    let result = TurnLevelLoop::new(s.clone(), EngineKind::Map)
        .run(true)
        .unwrap();
    assert!(!result.outcome.survived());
    match result.outcome {
        cil_core::LoopOutcome::Lost {
            turn,
            time_s,
            cause,
        } => {
            assert_eq!(cause, LossCause::Injected);
            assert!((time_s - 0.02).abs() < 2.0 / s.f_rev);
            assert_eq!(turn, (0.02 * s.f_rev).round() as usize);
        }
        cil_core::LoopOutcome::Survived => unreachable!(),
    }
}

#[test]
fn dds_dropout_signal_level_loop_keeps_running() {
    let mut s = MdeScenario::nov24_2023();
    s.bunches = 1;
    s.faults = FaultProgram {
        seed: 1,
        events: vec![FaultEvent {
            start_s: 1.0e-3,
            end_s: 1.5e-3,
            kind: FaultKind::DdsDropout,
        }],
    };
    let result = SignalLevelLoop::new(s).run(3e-3, true).unwrap();
    assert!(result.outcome.survived(), "dropout does not kill the chain");
    assert!(result.phase_deg.len() > 1000);
}

#[test]
fn invalid_config_surfaces_as_typed_error() {
    let s = MdeScenario::nov24_2023();
    let mut fw = SimulatorFramework::new(s.framework_config(), s.kernel_params().unwrap());
    let err = fw.set_pulse_table(Vec::new()).unwrap_err();
    assert!(matches!(err, CilError::InvalidConfig(_)));
    assert!(err.to_string().contains("pulse table"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A program whose every event is a noop at its configured amplitude
    /// must leave the closed-loop run bit-identical to a fault-free one:
    /// the injector may not draw a single random number for it.
    #[test]
    fn zero_amplitude_program_is_bit_identical(
        seed in 0u64..u64::MAX / 2,
        probability in 0.0f64..1.0,
        start_ms in 0.0f64..10.0,
    ) {
        let mut base = MdeScenario::nov24_2023();
        base.duration_s = 0.02;
        base.bunches = 1;

        let mut faulty = base.clone();
        faulty.faults = FaultProgram {
            seed,
            events: vec![
                FaultEvent {
                    start_s: start_ms * 1e-3,
                    end_s: 0.02,
                    kind: FaultKind::DetectorOutlier { probability, amplitude_deg: 0.0 },
                },
                FaultEvent {
                    start_s: 0.0,
                    end_s: 0.02,
                    kind: FaultKind::NanBurst { probability: 0.0 },
                },
                FaultEvent {
                    start_s: 0.0,
                    end_s: 0.02,
                    kind: FaultKind::DeadlineOverrun { factor: 1.0 },
                },
            ],
        };

        let run = |s: &MdeScenario| {
            let registry = TelemetryRegistry::new();
            let mut engine = MapEngine::from_scenario(s).unwrap();
            let mut harness = LoopHarness::for_scenario(s, true).with_telemetry(&registry);
            let trace = harness.run(&mut engine, s.duration_s);
            (trace, registry.snapshot())
        };
        let (clean, clean_snap) = run(&base);
        let (noop, noop_snap) = run(&faulty);

        // Telemetry regression: the exported metrics (wall-clock aside)
        // must be bit-identical between the noop-fault and fault-free runs.
        prop_assert_eq!(
            deterministic_part(&clean_snap),
            deterministic_part(&noop_snap)
        );
        prop_assert_eq!(clean_snap.counter("cil_fault_activations_total"), Some(0));

        prop_assert_eq!(clean.times.len(), noop.times.len());
        prop_assert!(noop.events.is_empty(), "noop faults log nothing");
        for (a, b) in clean.mean_phase_deg.iter().zip(&noop.mean_phase_deg) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in clean.control_hz.iter().zip(&noop.control_hz) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (row_a, row_b) in clean.bunch_phase_deg.iter().zip(&noop.bunch_phase_deg) {
            for (a, b) in row_a.iter().zip(row_b) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
