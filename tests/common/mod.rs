//! Proptest generators shared between the physics-invariant suite and the
//! RefTrack kernel differential suite: realistic SIS18 operating points and
//! matched macro-particle ensembles drawn from them.
//!
//! Lives in `tests/common/` so every integration-test binary that says
//! `mod common;` gets the same generators — the kernel differential tests
//! quantify over exactly the ensembles the invariant tests use.

#![allow(dead_code)]

use cavity_in_the_loop::physics::distribution::BunchSpec;
use cavity_in_the_loop::physics::machine::{MachineParams, OperatingPoint};
use cavity_in_the_loop::physics::synchrotron::SynchrotronCalc;
use cavity_in_the_loop::physics::IonSpecies;
use cavity_in_the_loop::reftrack::Ensemble;
use proptest::strategy::{CaseRng, Strategy};
use std::ops::Range;

/// The species the machine realistically runs.
pub fn ions() -> Vec<IonSpecies> {
    vec![
        IonSpecies::proton(),
        IonSpecies::n14_7plus(),
        IonSpecies::ar40_18plus(),
        IonSpecies::u238_73plus(),
    ]
}

/// One matched-bunch tracking scenario: an operating point that is below
/// transition with a physical RF voltage, plus an ensemble spec that fits
/// its bucket. Constructed only through [`matched_case`], which rejects
/// unphysical draws, so `build` cannot fail.
#[derive(Debug, Clone, Copy)]
pub struct MatchedCase {
    /// Revolution frequency (Hz).
    pub f_rev: f64,
    /// Peak gap voltage (V), derived from a drawn synchrotron frequency.
    pub v_hat: f64,
    /// Index into [`ions`].
    pub ion_idx: usize,
    /// Macro particles.
    pub particles: usize,
    /// RMS bunch length (s).
    pub sigma_dt: f64,
    /// Ensemble seed.
    pub seed: u64,
}

impl MatchedCase {
    /// The drawn species.
    pub fn ion(&self) -> IonSpecies {
        ions()[self.ion_idx]
    }

    /// The operating point of this case.
    pub fn operating_point(&self) -> OperatingPoint {
        OperatingPoint::from_revolution_frequency(
            MachineParams::sis18(),
            self.ion(),
            self.f_rev,
            self.v_hat,
        )
    }

    /// The operating point and its matched ensemble.
    pub fn build(&self) -> (OperatingPoint, Ensemble) {
        let op = self.operating_point();
        let e = Ensemble::matched(
            &BunchSpec::gaussian(self.sigma_dt),
            self.particles,
            &op,
            self.seed,
        )
        .expect("matched_case only emits buildable cases");
        (op, e)
    }
}

/// Strategy for [`MatchedCase`] with the macro-particle count drawn from
/// `particles`.
#[derive(Debug, Clone)]
pub struct MatchedCaseStrategy {
    particles: Range<usize>,
}

/// Matched-bunch scenarios over the realistic SIS18 space: 400 kHz–1 MHz
/// revolution frequency, synchrotron frequencies the control loop actually
/// sees (0.7–2.2 kHz), all four species, bunch lengths at 2–10% of the RF
/// period.
pub fn matched_case(particles: Range<usize>) -> MatchedCaseStrategy {
    MatchedCaseStrategy { particles }
}

impl Strategy for MatchedCaseStrategy {
    type Value = MatchedCase;

    fn generate(&self, rng: &mut CaseRng) -> MatchedCase {
        let m = MachineParams::sis18();
        loop {
            let f_rev = (400e3f64..1.0e6).generate(rng);
            let ion_idx = rng.next_usize(ions().len());
            let fs = (0.7e3f64..2.2e3).generate(rng);
            let Ok(v_hat) = SynchrotronCalc::new(m, ions()[ion_idx]).voltage_for_fs(f_rev, fs)
            else {
                continue; // above transition or otherwise unphysical
            };
            if !(1e2..1e6).contains(&v_hat) {
                continue; // outside any real gap amplifier's range
            }
            let case = MatchedCase {
                f_rev,
                v_hat,
                ion_idx,
                particles: self.particles.clone().generate(rng),
                sigma_dt: (0.02f64..0.10).generate(rng) / m.rf_frequency(f_rev),
                seed: rng.next_u64(),
            };
            let op = case.operating_point();
            if Ensemble::matched(
                &BunchSpec::gaussian(case.sigma_dt),
                case.particles,
                &op,
                case.seed,
            )
            .is_ok()
            {
                return case;
            }
        }
    }
}

/// The worker-configuration matrix the bit-identity properties quantify
/// over: (threads, min_chunk) pairs covering sequential, even multi-thread
/// splits, chunk-starved threads and a min_chunk that forces the
/// single-chunk fast path.
pub fn worker_matrix() -> Vec<(usize, usize)> {
    vec![(1, 1), (2, 64), (2, 100_000), (8, 1), (8, 512)]
}
