//! Campaign-runner acceptance tests — the chaos proof of ISSUE 7.
//!
//! The headline claim: a campaign SIGKILLed at an arbitrary moment resumes
//! from `campaign.log` and produces an aggregate results CSV byte-identical
//! to an uninterrupted run's, with panicking/erroring points quarantined in
//! `poisoned.csv` rather than failing the campaign. The kill is simulated
//! by truncating the WAL at a proptest-chosen byte offset: shard commits
//! are single appends and the output CSVs are tmp+rename, so an on-disk
//! state reachable by SIGKILL is exactly a WAL prefix (possibly ending in
//! a torn frame) — which the truncation sweep covers for *every* byte
//! position, not just frame boundaries.

use cil_core::campaign::{
    Campaign, CampaignConfig, CampaignError, CampaignWorker, CAMPAIGN_LOG_NAME,
};
use cil_core::error::{CilError, Result as CilResult};
use cil_core::hil::{EngineKind, TurnLevelLoop};
use cil_core::sweep::{parallel_sweep_with_merge_digest, SweepPanic};
use cil_core::MdeScenario;
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// Fresh per-test campaign directory under the target tree.
fn campaign_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/target/campaign-tests"
    ))
    .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A short real-physics point list: gain sweep over tiny closed loops,
/// seasoned with one point that always errors (gain index 7) and one that
/// always panics (gain index 13) so every run exercises quarantine.
fn scenario_points(n: usize) -> Vec<MdeScenario> {
    (0..n)
        .map(|i| {
            let mut s = MdeScenario::nov24_2023();
            s.duration_s = 0.002;
            s.bunches = 1;
            s.jumps.interval_s = 0.0008;
            s.controller.gain = -0.5 - 0.25 * i as f64;
            s
        })
        .collect()
}

fn evaluate(worker: &mut CampaignWorker, s: &MdeScenario) -> CilResult<Vec<f64>> {
    // Poison points keyed on the gain so they are a property of the input,
    // not of execution order.
    let idx = ((-s.controller.gain - 0.5) / 0.25).round() as i64;
    if idx == 7 {
        return Err(CilError::InvalidConfig("poison point: typed error".into()));
    }
    if idx == 13 {
        panic!("poison point: controller drove the engine unstable");
    }
    let engine = worker.arena.engine(s, EngineKind::Map)?;
    let r = TurnLevelLoop::new(s.clone(), EngineKind::Map).run_on(engine, true)?;
    let tail = &r.phase_deg.values[r.phase_deg.values.len() / 2..];
    Ok(vec![
        tail.iter().map(|v| v.abs()).sum::<f64>() / tail.len() as f64,
        r.control_hz
            .values
            .iter()
            .map(|v| v.abs())
            .fold(0.0, f64::max),
    ])
}

fn config(dir: PathBuf, workers: usize) -> CampaignConfig {
    let mut cfg = CampaignConfig::new(dir, &["tail_residual_deg", "max_actuation_hz"]);
    cfg.shard_points = 4;
    cfg.workers = workers;
    cfg.max_retries = 1;
    cfg
}

/// Run the standard scenario campaign in `dir`; returns (aggregate bytes,
/// poisoned bytes, shards resumed).
fn run_campaign(points: &[MdeScenario], dir: PathBuf, workers: usize) -> (Vec<u8>, Vec<u8>, usize) {
    let report = Campaign::new(points, config(dir, workers))
        .expect("valid config")
        .run(evaluate)
        .expect("campaign runs");
    assert_eq!(report.completed + report.quarantined, points.len());
    assert_eq!(report.quarantined, 2, "both poison points quarantined");
    (
        std::fs::read(&report.aggregate_csv).expect("aggregate.csv"),
        std::fs::read(&report.poisoned_csv).expect("poisoned.csv"),
        report.shards_resumed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Kill the campaign at a proptest-chosen WAL byte offset — anywhere
    /// from "barely started" to "almost done", including mid-frame — then
    /// resume and require the aggregate and poisoned CSVs byte-identical
    /// to an uninterrupted campaign's.
    #[test]
    fn killed_campaign_resumes_to_identical_csv(kill_frac in 0.05f64..0.98) {
        let points = scenario_points(24);
        let (ref_agg, ref_poi, _) =
            run_campaign(&points, campaign_dir("kill-reference"), 2);

        let dir = campaign_dir(&format!("kill-{:03}", (kill_frac * 1000.0) as u32));
        let _ = run_campaign(&points, dir.clone(), 2);
        let log = dir.join(CAMPAIGN_LOG_NAME);
        let bytes = std::fs::read(&log).expect("read WAL");
        let cut = ((bytes.len() as f64) * kill_frac) as usize;
        std::fs::write(&log, &bytes[..cut]).expect("truncate WAL");

        let (agg, poi, _) = run_campaign(&points, dir, 2);
        prop_assert_eq!(&agg, &ref_agg, "aggregate CSV differs after resume");
        prop_assert_eq!(&poi, &ref_poi, "poisoned CSV differs after resume");
    }
}

/// Same poison points, different worker counts: the quarantined set (and
/// every completed value) must be identical — shard outcomes are a
/// function of the points alone, never of scheduling.
#[test]
fn quarantine_is_deterministic_across_worker_counts() {
    let points = scenario_points(24);
    let (agg1, poi1, _) = run_campaign(&points, campaign_dir("det-w1"), 1);
    let (agg3, poi3, _) = run_campaign(&points, campaign_dir("det-w3"), 3);
    assert_eq!(agg1, agg3, "aggregate CSV depends on worker count");
    assert_eq!(poi1, poi3, "poisoned CSV depends on worker count");
    assert!(
        String::from_utf8_lossy(&poi1).contains("poison point: typed error"),
        "typed error message recorded"
    );
    assert!(
        String::from_utf8_lossy(&poi1).contains("controller drove the engine unstable"),
        "panic message recorded"
    );
}

/// A transiently failing point succeeds on its second attempt and the
/// retry leaves no trace in the aggregate beyond the attempts column.
#[test]
fn retry_then_succeed_is_deterministic() {
    let points: Vec<u64> = (0..20).collect();
    let run = |dir: PathBuf, workers: usize| {
        let mut cfg = CampaignConfig::new(dir, &["value"]);
        cfg.shard_points = 4;
        cfg.workers = workers;
        cfg.max_retries = 2;
        let report = Campaign::new(&points, cfg)
            .expect("valid config")
            .run(|w: &mut CampaignWorker, &p: &u64| {
                if p % 5 == 3 && w.attempt() < 2 {
                    Err(CilError::InvalidConfig("transient".into()))
                } else {
                    Ok(vec![p as f64 * 1.5])
                }
            })
            .expect("campaign runs");
        assert_eq!(report.completed, 20);
        for o in &report.outcomes {
            let expected = if o.index % 5 == 3 { 2 } else { 1 };
            assert_eq!(o.attempts, expected, "point {}", o.index);
        }
        std::fs::read(&report.aggregate_csv).expect("aggregate.csv")
    };
    let a = run(campaign_dir("retry-w1"), 1);
    let b = run(campaign_dir("retry-w4"), 4);
    assert_eq!(a, b);
}

/// Garbage appended to a complete WAL — torn frame header, torn payload,
/// wrong magic — is discarded on resume; all shards are recovered and no
/// point re-executes.
#[test]
fn torn_wal_tail_is_discarded_on_resume() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let points: Vec<u64> = (0..32).collect();
    let make_cfg = |dir: PathBuf| {
        let mut cfg = CampaignConfig::new(dir, &["value"]);
        cfg.shard_points = 8;
        cfg.workers = 2;
        cfg
    };
    let dir = campaign_dir("torn-tail");
    Campaign::new(&points, make_cfg(dir.clone()))
        .expect("valid config")
        .run(|_w, &p| Ok(vec![p as f64]))
        .expect("campaign runs");

    let log = dir.join(CAMPAIGN_LOG_NAME);
    let clean = std::fs::read(&log).expect("read WAL");
    for (tag, tail) in [
        ("torn header", vec![0x43u8, 0x41, 0x4D]),
        ("torn frame", {
            // Valid magic + huge length, then nothing.
            let mut t = 0x534D_4143u32.to_le_bytes().to_vec();
            t.extend_from_slice(&u64::MAX.to_le_bytes());
            t
        }),
        (
            "foreign magic",
            b"TRCB\x10\x00\x00\x00\x00\x00\x00\x00garbage!".to_vec(),
        ),
    ] {
        let mut bytes = clean.clone();
        bytes.extend_from_slice(&tail);
        std::fs::write(&log, &bytes).expect("write damaged WAL");

        let executions = AtomicUsize::new(0);
        let report = Campaign::new(&points, make_cfg(dir.clone()))
            .expect("valid config")
            .run(|_w, &p| {
                executions.fetch_add(1, Ordering::Relaxed);
                Ok(vec![p as f64])
            })
            .expect("campaign resumes");
        assert_eq!(report.shards_resumed, 4, "{tag}: all shards recovered");
        assert_eq!(
            executions.load(Ordering::Relaxed),
            0,
            "{tag}: no point re-executed"
        );
    }
}

/// A WAL whose valid header names a different campaign must be rejected —
/// silently clobbering another campaign's log is data loss.
#[test]
fn foreign_wal_header_is_rejected() {
    let points: Vec<u64> = (0..8).collect();
    let dir = campaign_dir("foreign-header");
    let cfg = |columns: &[&str]| {
        let mut c = CampaignConfig::new(dir.clone(), columns);
        c.shard_points = 4;
        c.workers = 1;
        c
    };
    Campaign::new(&points, cfg(&["value"]))
        .expect("valid config")
        .run(|_w, &p| Ok(vec![p as f64]))
        .expect("campaign runs");
    let err = Campaign::new(&points, cfg(&["other_column"]))
        .expect("valid config")
        .run(|_w, &p| Ok(vec![p as f64]))
        .expect_err("column rename must be rejected");
    assert!(
        matches!(err, CampaignError::Incompatible(_)),
        "unexpected error: {err:?}"
    );
}

/// fsync opt-in: same outcomes, same CSV bytes — durability is a
/// persistence knob, never a results knob.
#[test]
fn fsync_campaign_matches_default() {
    let points: Vec<u64> = (0..16).collect();
    let run = |dir: PathBuf, fsync: bool| {
        let mut cfg = CampaignConfig::new(dir, &["value"]);
        cfg.shard_points = 4;
        cfg.workers = 2;
        cfg.fsync = fsync;
        let report = Campaign::new(&points, cfg)
            .expect("valid config")
            .run(|_w, &p| Ok(vec![(p as f64).sqrt()]))
            .expect("campaign runs");
        std::fs::read(&report.aggregate_csv).expect("aggregate.csv")
    };
    assert_eq!(
        run(campaign_dir("fsync-on"), true),
        run(campaign_dir("fsync-off"), false)
    );
}

/// Satellite proof: a panic escaping a raw `parallel_sweep` carries the
/// failing point's index and scenario digest, so the campaign layer (and
/// any other caller) can map it back to the input.
#[test]
fn sweep_panic_names_the_failing_scenario() {
    let points = scenario_points(6);
    let bad_digest = points[3].digest();
    let result = catch_unwind(AssertUnwindSafe(|| {
        parallel_sweep_with_merge_digest(
            &points,
            2,
            || (),
            |(), s: &MdeScenario| {
                if s.digest() == bad_digest {
                    panic!("engine diverged");
                }
                s.controller.gain
            },
            |()| {},
            MdeScenario::digest,
        )
    }));
    let payload = result.expect_err("sweep must re-raise");
    let sp = payload
        .downcast::<SweepPanic>()
        .expect("payload is a SweepPanic");
    assert_eq!(sp.index, 3);
    assert_eq!(sp.digest, bad_digest);
    assert!(sp.message().contains("engine diverged"));
}

/// The checkpoint config's fsync flag round-trips through a real
/// checkpointed run (satellite smoke: the flag is plumbed, not just
/// stored).
#[test]
fn checkpointed_run_with_fsync_completes() {
    use cil_core::checkpoint::CheckpointConfig;
    use cil_core::harness::LoopHarness;
    let mut s = MdeScenario::nov24_2023();
    s.duration_s = 0.004;
    s.bunches = 1;
    let dir = campaign_dir("ckpt-fsync");
    let mut cfg = CheckpointConfig::new(dir);
    cfg.every_turns = 512;
    cfg.fsync = true;
    let mut harness = LoopHarness::for_scenario(&s, true).with_checkpointing(cfg);
    let trace = harness
        .run_checkpointed(&s, EngineKind::Map, s.duration_s)
        .expect("checkpointed run with fsync");
    assert!(!trace.times.is_empty());
}
